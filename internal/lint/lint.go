// Package lint is the static verification layer: design-rule checks
// over the three artifact kinds the reproduction generates — gate-level
// netlists, microcode programs and march algorithms. Classic DFT flows
// run design-rule checking before any simulation; this package does the
// same for every synthesised controller, turning "the tests happened to
// pass" into "every generated artifact is provably well-formed".
//
// All passes are purely structural: no gate-level simulation and no
// march execution happens here (enforced by an import-graph test). The
// bounded-termination check on microcode programs is an abstract
// interpretation of the loop structure, not a run.
package lint

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Severity ranks a finding. Error findings mean the artifact is broken
// (a simulation would hang, misbehave or read undefined nets); Warning
// findings are wasteful or suspicious but functionally harmless; Info
// findings are observations.
type Severity int

// Severity levels, ordered.
const (
	Info Severity = iota
	Warning
	Error
)

var severityNames = [...]string{"info", "warning", "error"}

func (s Severity) String() string {
	if s >= 0 && int(s) < len(severityNames) {
		return severityNames[s]
	}
	return fmt.Sprintf("severity(%d)", int(s))
}

// MarshalJSON encodes the severity as its lowercase name so reports are
// self-describing.
func (s Severity) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.String())
}

// UnmarshalJSON decodes a severity name.
func (s *Severity) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	for i, n := range severityNames {
		if n == name {
			*s = Severity(i)
			return nil
		}
	}
	return fmt.Errorf("lint: unknown severity %q", name)
}

// Finding is one design-rule violation.
type Finding struct {
	Severity Severity `json:"severity"`
	// Check is the rule's stable slug, e.g. "comb-loop" or
	// "non-termination".
	Check string `json:"check"`
	// Artifact identifies what was checked, e.g.
	// "netlist:hardwired/marchc/bit/unit" or "ucode:marchc/word".
	Artifact string `json:"artifact"`
	Message  string `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%-7s %-18s %-40s %s", f.Severity, f.Check, f.Artifact, f.Message)
}

// Report collects the findings of a lint run.
type Report struct {
	// Artifacts counts the artifacts examined (clean ones included).
	Artifacts int       `json:"artifacts"`
	Findings  []Finding `json:"findings"`
}

// Add appends findings to the report.
func (r *Report) Add(fs ...Finding) { r.Findings = append(r.Findings, fs...) }

// Sort orders findings deterministically: by artifact, then check, then
// message, then severity. Reporters rely on this for byte-stable output.
func (r *Report) Sort() {
	sort.SliceStable(r.Findings, func(i, j int) bool {
		a, b := r.Findings[i], r.Findings[j]
		if a.Artifact != b.Artifact {
			return a.Artifact < b.Artifact
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		if a.Message != b.Message {
			return a.Message < b.Message
		}
		return a.Severity > b.Severity
	})
}

// Count returns the number of findings at the given severity.
func (r *Report) Count(s Severity) int {
	n := 0
	for _, f := range r.Findings {
		if f.Severity == s {
			n++
		}
	}
	return n
}

// HasErrors reports whether any finding is Error severity.
func (r *Report) HasErrors() bool { return r.Count(Error) > 0 }

// Text renders the report for terminals: one line per finding (sorted)
// and a trailing summary line.
func (r *Report) Text() string {
	var b strings.Builder
	r.Sort()
	for _, f := range r.Findings {
		b.WriteString(f.String())
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%d artifacts checked: %d errors, %d warnings, %d notes\n",
		r.Artifacts, r.Count(Error), r.Count(Warning), r.Count(Info))
	return b.String()
}

// JSON renders the report as stable, indented JSON (findings sorted).
func (r *Report) JSON() ([]byte, error) {
	r.Sort()
	out := *r
	if out.Findings == nil {
		out.Findings = []Finding{}
	}
	b, err := json.MarshalIndent(&out, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// finding builds a Finding tersely.
func finding(sev Severity, check, artifact, format string, args ...interface{}) Finding {
	return Finding{Severity: sev, Check: check, Artifact: artifact, Message: fmt.Sprintf(format, args...)}
}

// nameList joins up to max names for a message, eliding the rest.
func nameList(names []string, max int) string {
	if len(names) <= max {
		return strings.Join(names, ", ")
	}
	return fmt.Sprintf("%s, ... (%d more)", strings.Join(names[:max], ", "), len(names)-max)
}
