package faults

import (
	"testing"

	"repro/internal/raceflag"
)

// TestLaneBatchLoopZeroAlloc pins the zero-allocation steady state of
// the lane batch loop: once a LaneInjected has been warmed on a batch,
// re-arming it via Reset and replaying a march-like operation sequence
// (with a reused ReadLanes destination) must not allocate. This is the
// per-batch hot path of the grading engine's arena; a regression here
// shows up as allocs-per-op growth in BenchmarkGradeLane.
func TestLaneBatchLoopZeroAlloc(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("race instrumentation allocates; alloc pins need a non-race build")
	}
	const size, width, ports, np = 16, 1, 1, 4
	universe := Universe(size, width, UniverseOpts{})
	limit := BatchLimit(np)
	if len(universe) < 2*limit {
		t.Fatalf("universe too small: %d faults", len(universe))
	}
	batches := [][]Fault{universe[:limit], universe[limit : 2*limit]}

	m := NewLaneInjectedPlanes(size, width, ports, np, batches[0])
	dst := make([]uint64, 0, width*np)
	replay := func(batch []Fault) {
		m.Reset(batch)
		for a := 0; a < size; a++ {
			m.Write(0, a, 0)
		}
		for a := 0; a < size; a++ {
			dst = m.ReadLanes(0, a, dst[:0])
			m.Write(0, a, 1)
			dst = m.ReadLanes(0, a, dst[:0])
		}
		m.Pause()
		for a := size - 1; a >= 0; a-- {
			dst = m.ReadLanes(0, a, dst[:0])
			dst = m.ReadLanes(0, a, dst[:0])
			dst = m.ReadLanes(0, a, dst[:0])
			m.Write(0, a, 0)
		}
	}
	// Warm both batches so every lazily-grown mask array and entry list
	// reaches its steady-state capacity.
	replay(batches[0])
	replay(batches[1])

	i := 0
	if avg := testing.AllocsPerRun(20, func() {
		replay(batches[i&1])
		i++
	}); avg != 0 {
		t.Errorf("lane batch loop allocates %.1f objects per batch in steady state, want 0", avg)
	}
}
