package faults

import "fmt"

// MaxLanes is the number of fault lanes a single-plane LaneInjected
// carries: 64 uint64 bit-positions minus lane 0, which is reserved for
// the fault-free (good) machine. Multi-plane memories carry
// BatchLimit(planes) faults.
const MaxLanes = 63

// MaxPlanes bounds the plane count of NewLaneInjectedPlanes (8 planes =
// 512 logical lanes), matching gatesim.MaxPlanes.
const MaxPlanes = 8

// BatchLimit returns the fault capacity of a memory with the given
// plane count: planes×64 logical lanes minus the good-machine lane 0.
func BatchLimit(planes int) int { return planes*64 - 1 }

// LaneInjected packs one good machine and up to BatchLimit(P)
// single-fault machines into P uint64 bit-planes per bit cell: bit b of
// plane p of a cell is the cell value of logical lane p*64+b. Lane 0
// carries no fault; lane k (k >= 1) carries exactly faults[k-1] of the
// batch. All fault behaviour of the scalar Injected model — stuck-at,
// transition, write-disturb, stuck-open, retention, read-disturb,
// incorrect-read, deceptive-read, coupling and address-decoder faults,
// with per-port visibility — becomes lane-masked bitwise operations, so
// one replayed operation stream grades a whole batch at once (the PPSFP
// idea of parallel-pattern single-fault propagation applied to the
// behavioural memory model).
//
// Because every lane holds at most ONE fault, fault interactions within
// a lane cannot occur and the per-kind mask applications are
// order-independent; lane k is bit-identical to a scalar Injected
// carrying only fault k (asserted by TestLaneInjectedMatchesScalar).
//
// A LaneInjected is an arena: Reset re-arms it for a fresh batch
// without allocating, so a grading worker builds one per geometry and
// reuses it for every batch.
type LaneInjected struct {
	size  int
	width int
	ports int
	np    int // P: active uint64 bit-planes per cell
	npCap int // allocated plane capacity; np <= npCap

	planes []uint64 // size*width*np cell planes, [cell*np+p]

	// Victim lane masks, grouped by access path so each hot loop reads
	// one contiguous stripe per (cell, plane) slot instead of chasing a
	// dozen separate arrays (stuck-at masks are written into both blocks
	// because both paths apply them). Per port; AnyPort faults set every
	// port.
	wmask laneBlock // write path: sa0, sa1, tfUp, tfDown, wdf0, wdf1
	rmask laneBlock // read path: sa0, sa1, rdf0, rdf1, irf0, irf1, drdf0, drdf1, sof

	drf []drfEntry // retention leaks, applied on Pause (port-agnostic)

	cfTrig  [][]cfEntry // aggressor cell -> CFin/CFid entries
	cfState []cfEntry   // CFst entries, re-applied after writes/pauses

	// CFst re-application is filtered to entries whose aggressor or
	// victim cell changed since the last application: because every
	// lane carries one fault, entries in untouched cells are exact
	// no-ops, so the filter is equivalence-preserving and turns the
	// per-write cost from O(all CFst entries) into O(entries of touched
	// cells). dirty/dirtyList track touched cells; hasCFst gates the
	// marking so batches without CFst faults pay nothing.
	cfStateByCell [][]int32 // cell -> indices into cfState
	dirty         []bool
	dirtyList     []int32
	hasCFst       bool

	afNone  portAddrMask // lanes whose address selects no cell
	afRedir [][]afEntry  // addr -> AFMap/AFMulti redirections
	hasAF   bool         // any decoder fault in the batch; false keeps defLanes all-ones

	faults []Fault // the batch, logical lane k = faults[k-1]
	caps   Caps    // union of the batch's fault-mechanism capabilities

	senseLatch  [][]uint64 // [port][bit*np+p] previous sensed planes
	consecReads []int32    // per cell: consecutive reads since last write

	defLanes    []uint64 // per-plane default-decode scratch, len npCap
	readVals    []uint64 // per-plane read-result scratch, len npCap
	replayReads []uint64 // general-kernel read scratch, lazily grown
}

// Mask offsets within the write-path block (stride wStride per slot).
const (
	wSA0 = iota
	wSA1
	wTFUp
	wTFDown
	wWDF0
	wWDF1
	wStride
)

// Mask offsets within the read-path block (stride rStride per slot).
const (
	rSA0 = iota
	rSA1
	rRDF0
	rRDF1
	rIRF0
	rIRF1
	rDRDF0
	rDRDF1
	rSOF
	rStride
)

// laneBlock packs a family of per-(port, cell, plane) lane masks into
// one contiguous array, [port][slot*stride+k], so the write and read
// hot loops touch one or two cache lines per slot. Allocated lazily on
// the first fault of the family; the nil block reads as zero.
type laneBlock struct {
	byPort [][]uint64
	stride int
}

// add sets lane bits in mask k at slot idx (= cell*np+plane) of one
// port, or of every port for AnyPort. slots is the slot count
// (cells*np).
func (m *laneBlock) add(ports, slots, port, idx, k int, lane uint64) {
	if m.byPort == nil {
		m.byPort = make([][]uint64, ports)
		for p := range m.byPort {
			m.byPort[p] = make([]uint64, slots*m.stride)
		}
	}
	if port == AnyPort {
		for p := range m.byPort {
			m.byPort[p][idx*m.stride+k] |= lane
		}
		return
	}
	m.byPort[port][idx*m.stride+k] |= lane
}

// at returns the stride-long mask stripe of one slot, or nil when no
// fault of the family is injected.
func (m *laneBlock) at(port, idx int) []uint64 {
	if m.byPort == nil {
		return nil
	}
	o := idx * m.stride
	return m.byPort[port][o : o+m.stride]
}

func (m *laneBlock) reset() {
	for _, s := range m.byPort {
		clear(s)
	}
}

// portAddrMask is portCellMask indexed by addr*np+plane.
type portAddrMask struct {
	byPort [][]uint64
}

func (m *portAddrMask) add(ports, n, port, idx int, lane uint64) {
	if m.byPort == nil {
		m.byPort = make([][]uint64, ports)
		for p := range m.byPort {
			m.byPort[p] = make([]uint64, n)
		}
	}
	if port == AnyPort {
		for p := range m.byPort {
			m.byPort[p][idx] |= lane
		}
		return
	}
	m.byPort[port][idx] |= lane
}

func (m *portAddrMask) at(port, idx int) uint64 {
	if m.byPort == nil {
		return 0
	}
	return m.byPort[port][idx]
}

func (m *portAddrMask) reset() {
	for _, s := range m.byPort {
		clear(s)
	}
}

// cfEntry is one coupling fault: lane is the single bit carrying it
// within plane.
type cfEntry struct {
	agg    int
	victim int
	lane   uint64
	plane  int
	kind   Kind
	aggVal bool
	value  bool
}

// drfEntry is one retention leak.
type drfEntry struct {
	cell  int
	lane  uint64
	plane int
	value bool
}

// afEntry is one AFMap/AFMulti redirection at its faulty address.
type afEntry struct {
	lane    uint64
	plane   int
	aggAddr int
	multi   bool
	port    int
}

func (e afEntry) appliesTo(port int) bool {
	return e.port == AnyPort || e.port == port
}

// NewLaneInjected returns a single-plane (64-lane) lane-parallel memory
// of the given geometry with batch[i] injected into lane i+1 (lane 0
// stays fault-free). The batch holds at most MaxLanes faults; fault
// validation matches the scalar NewInjected. All cells start at zero.
func NewLaneInjected(size, width, ports int, batch []Fault) *LaneInjected {
	return NewLaneInjectedPlanes(size, width, ports, 1, batch)
}

// NewLaneInjectedPlanes is NewLaneInjected with planes uint64
// bit-planes per cell, giving a batch capacity of BatchLimit(planes)
// faults: batch[i] occupies logical lane i+1, which lives in plane
// (i+1)/64, bit (i+1)%64.
func NewLaneInjectedPlanes(size, width, ports, planes int, batch []Fault) *LaneInjected {
	if size <= 0 || width < 1 || width > 64 || ports <= 0 {
		panic(fmt.Sprintf("faults: bad geometry %dx%d, %d ports", size, width, ports))
	}
	if planes < 1 || planes > MaxPlanes {
		panic(fmt.Sprintf("faults: %d planes outside [1,%d]", planes, MaxPlanes))
	}
	if len(batch) > BatchLimit(planes) {
		panic(fmt.Sprintf("faults: batch of %d exceeds %d lanes", len(batch), BatchLimit(planes)))
	}
	m := &LaneInjected{
		size:          size,
		width:         width,
		ports:         ports,
		np:            planes,
		npCap:         planes,
		wmask:         laneBlock{stride: wStride},
		rmask:         laneBlock{stride: rStride},
		planes:        make([]uint64, size*width*planes),
		cfTrig:        make([][]cfEntry, size*width),
		cfStateByCell: make([][]int32, size*width),
		dirty:         make([]bool, size*width),
		afRedir:       make([][]afEntry, size),
		faults:        batch,
		consecReads:   make([]int32, size*width),
		defLanes:      make([]uint64, planes),
		readVals:      make([]uint64, planes),
	}
	for p := range m.defLanes {
		m.defLanes[p] = ^uint64(0)
	}
	m.senseLatch = make([][]uint64, ports)
	for p := range m.senseLatch {
		m.senseLatch[p] = make([]uint64, width*planes)
	}
	for i, f := range batch {
		m.inject(f, i+1)
	}
	return m
}

// Reset clears every cell, latch and injected fault and re-arms the
// memory with a fresh batch — the arena path of the grading engine.
// After the first few batches have touched every fault kind it
// allocates nothing (mask arrays are retained and zeroed in place).
func (m *LaneInjected) Reset(batch []Fault) { m.ResetPlanes(batch, m.np) }

// SameBatch reports whether the memory's current batch is the exact
// slice passed (same backing array, length and offset) — the identity
// the ResetPlanes re-injection skip keys on. Grading arenas use it to
// route a cached batch slice back to the arena already armed with it.
func (m *LaneInjected) SameBatch(batch []Fault) bool {
	return len(batch) == len(m.faults) && len(batch) > 0 && &batch[0] == &m.faults[0]
}

// ResetPlanes is Reset with an explicit active plane count in
// [1, PlaneCap()]: a 40-fault batch replayed on an 8-plane arena only
// needs 1 plane's worth of mask and cell traffic, so shrinking np per
// batch makes small batches proportionally cheaper without
// reallocating the arena.
//
// When batch is the exact slice the arena is already armed with (same
// backing array — see SameBatch) at the same plane count, the fault
// masks and entry tables are provably identical, so only the mutable
// machine state (cells, latches, read counters, CFst dirty seeds) is
// cleared and the O(batch) re-injection is skipped entirely.
func (m *LaneInjected) ResetPlanes(batch []Fault, planes int) {
	if planes < 1 || planes > m.npCap {
		panic(fmt.Sprintf("faults: %d planes outside [1,%d]", planes, m.npCap))
	}
	if len(batch) > BatchLimit(planes) {
		panic(fmt.Sprintf("faults: batch of %d exceeds %d lanes", len(batch), BatchLimit(planes)))
	}
	same := planes == m.np && m.SameBatch(batch)
	m.np = planes
	clear(m.planes)
	clear(m.consecReads)
	for p := range m.senseLatch {
		clear(m.senseLatch[p])
	}
	for _, c := range m.dirtyList {
		m.dirty[c] = false
	}
	m.dirtyList = m.dirtyList[:0]
	if same {
		m.seedDirty()
		return
	}
	m.wmask.reset()
	m.rmask.reset()
	m.afNone.reset()
	m.drf = m.drf[:0]
	m.cfState = m.cfState[:0]
	for i := range m.cfTrig {
		if m.cfTrig[i] != nil {
			m.cfTrig[i] = m.cfTrig[i][:0]
		}
	}
	for i := range m.cfStateByCell {
		if m.cfStateByCell[i] != nil {
			m.cfStateByCell[i] = m.cfStateByCell[i][:0]
		}
	}
	m.hasCFst = false
	m.hasAF = false
	m.caps = 0
	for p := range m.defLanes {
		m.defLanes[p] = ^uint64(0)
	}
	for i := range m.afRedir {
		if m.afRedir[i] != nil {
			m.afRedir[i] = m.afRedir[i][:0]
		}
	}
	m.faults = batch
	for i, f := range batch {
		m.inject(f, i+1)
	}
}

// seedDirty re-seeds the CFst first-application marks that inject
// plants — the only inject side effect the same-batch Reset fast path
// must reproduce (everything else inject writes is immutable across
// replays of the same batch).
//
//mbist:hotpath
func (m *LaneInjected) seedDirty() {
	for i := range m.cfState {
		e := &m.cfState[i]
		m.markDirty(e.agg)
		m.markDirty(e.victim)
	}
}

// inject adds fault f on logical lane l (plane l/64, bit l%64).
func (m *LaneInjected) inject(f Fault, l int) {
	plane := l >> 6
	lane := uint64(1) << uint(l&63)
	np := m.np
	cells := m.size * m.width
	// Mask blocks are sized at full plane capacity so ResetPlanes can
	// grow np back without reallocating; indexing always uses the
	// active np.
	n := cells * m.npCap
	m.caps |= capsOf(f.Kind)
	checkCell := func(c int) {
		if c < 0 || c >= cells {
			panic(fmt.Sprintf("faults: victim cell %d out of range", c))
		}
	}
	idx := func(c int) int { return c*np + plane }
	switch f.Kind {
	case SA:
		checkCell(f.Cell)
		// Stuck-at masks feed both access paths.
		k, rk := wSA0, rSA0
		if f.Value {
			k, rk = wSA1, rSA1
		}
		m.wmask.add(m.ports, n, f.Port, idx(f.Cell), k, lane)
		m.rmask.add(m.ports, n, f.Port, idx(f.Cell), rk, lane)
	case TF:
		checkCell(f.Cell)
		k := wTFDown
		if f.Value {
			k = wTFUp
		}
		m.wmask.add(m.ports, n, f.Port, idx(f.Cell), k, lane)
	case WDF:
		checkCell(f.Cell)
		k := wWDF0
		if f.Value {
			k = wWDF1
		}
		m.wmask.add(m.ports, n, f.Port, idx(f.Cell), k, lane)
	case SOF:
		checkCell(f.Cell)
		m.rmask.add(m.ports, n, f.Port, idx(f.Cell), rSOF, lane)
	case RDF:
		checkCell(f.Cell)
		k := rRDF0
		if f.Value {
			k = rRDF1
		}
		m.rmask.add(m.ports, n, f.Port, idx(f.Cell), k, lane)
	case IRF:
		checkCell(f.Cell)
		k := rIRF0
		if f.Value {
			k = rIRF1
		}
		m.rmask.add(m.ports, n, f.Port, idx(f.Cell), k, lane)
	case DRDF:
		checkCell(f.Cell)
		k := rDRDF0
		if f.Value {
			k = rDRDF1
		}
		m.rmask.add(m.ports, n, f.Port, idx(f.Cell), k, lane)
	case DRF:
		checkCell(f.Cell)
		m.drf = append(m.drf, drfEntry{cell: f.Cell, lane: lane, plane: plane, value: f.Value})
	case CFin, CFid:
		if f.Cell < 0 || f.Cell >= cells || f.Aggressor < 0 || f.Aggressor >= cells {
			panic("faults: coupling fault cell out of range")
		}
		if f.Cell == f.Aggressor {
			panic("faults: coupling fault victim == aggressor")
		}
		m.cfTrig[f.Aggressor] = append(m.cfTrig[f.Aggressor], cfEntry{
			agg: f.Aggressor, victim: f.Cell, lane: lane, plane: plane,
			kind: f.Kind, aggVal: f.AggVal, value: f.Value,
		})
	case CFst:
		if f.Cell < 0 || f.Cell >= cells || f.Aggressor < 0 || f.Aggressor >= cells {
			panic("faults: coupling fault cell out of range")
		}
		if f.Cell == f.Aggressor {
			panic("faults: coupling fault victim == aggressor")
		}
		ei := int32(len(m.cfState))
		m.cfState = append(m.cfState, cfEntry{
			agg: f.Aggressor, victim: f.Cell, lane: lane, plane: plane,
			kind: f.Kind, aggVal: f.AggVal, value: f.Value,
		})
		// Re-application triggers on changes to either endpoint: the
		// aggressor (condition flips) or the victim (overwritten value
		// must snap back while the condition holds).
		m.cfStateByCell[f.Aggressor] = append(m.cfStateByCell[f.Aggressor], ei)
		m.cfStateByCell[f.Cell] = append(m.cfStateByCell[f.Cell], ei)
		m.hasCFst = true
		// Seed the first application: the scalar model applies every
		// entry at the first write/pause, touched or not (an all-zero
		// memory can already satisfy an aggVal=false condition).
		m.markDirty(f.Aggressor)
		m.markDirty(f.Cell)
	case AFNone, AFMap, AFMulti:
		if f.Addr < 0 || f.Addr >= m.size {
			panic("faults: AF address out of range")
		}
		if f.Kind == AFNone {
			m.afNone.add(m.ports, m.size*m.npCap, f.Port, f.Addr*np+plane, lane)
		} else {
			m.afRedir[f.Addr] = append(m.afRedir[f.Addr], afEntry{
				lane: lane, plane: plane, aggAddr: f.AggAddr, multi: f.Kind == AFMulti, port: f.Port,
			})
		}
		m.hasAF = true
	default:
		panic("faults: unknown fault kind")
	}
}

// Size returns the number of word addresses.
func (m *LaneInjected) Size() int { return m.size }

// Width returns the bits per word.
func (m *LaneInjected) Width() int { return m.width }

// Ports returns the number of access ports.
func (m *LaneInjected) Ports() int { return m.ports }

// Planes returns the number of active uint64 bit-planes per cell.
func (m *LaneInjected) Planes() int { return m.np }

// PlaneCap returns the allocated plane capacity — the largest active
// plane count ResetPlanes accepts.
func (m *LaneInjected) PlaneCap() int { return m.npCap }

// Lanes returns the number of occupied fault lanes (the batch size).
func (m *LaneInjected) Lanes() int { return len(m.faults) }

// FaultMask returns the plane-0 occupied-lane mask (bits 1..63 for the
// first 63 faults of the batch); see FaultMaskPlane for the rest.
func (m *LaneInjected) FaultMask() uint64 { return m.FaultMaskPlane(0) }

// FaultMaskPlane returns the lane mask covering the occupied fault
// lanes of plane p: logical lanes 1..Lanes() fill plane 0 bits 1..63
// first, then plane 1 bits 0..63, and so on.
func (m *LaneInjected) FaultMaskPlane(p int) uint64 {
	n := len(m.faults)
	if p == 0 {
		k := n
		if k >= 63 {
			return ^uint64(0) &^ 1
		}
		return (uint64(1)<<uint(k+1) - 1) &^ 1
	}
	k := n - p*64 + 1 // occupied bits 0..k-1 of this plane
	if k <= 0 {
		return 0
	}
	if k >= 64 {
		return ^uint64(0)
	}
	return uint64(1)<<uint(k) - 1
}

//mbist:hotpath
func (m *LaneInjected) checkAccess(port, addr int) {
	if port < 0 || port >= m.ports {
		panic(fmt.Sprintf("faults: port %d out of [0,%d)", port, m.ports))
	}
	if addr < 0 || addr >= m.size {
		panic(fmt.Sprintf("faults: address %d out of [0,%d)", addr, m.size))
	}
}

// defaultDecode fills m.defLanes with the per-plane lane sets that see
// the normally decoded cells of addr: decoder faults drop (AFNone) or
// redirect (AFMap) their lanes away from the default cells. Batches
// without decoder faults keep defLanes pinned all-ones and skip the
// recomputation entirely.
//
//mbist:hotpath
func (m *LaneInjected) defaultDecode(port, addr int, redir []afEntry) {
	if !m.hasAF {
		return
	}
	np := m.np
	for p := 0; p < np; p++ {
		m.defLanes[p] = ^uint64(0) &^ m.afNone.at(port, addr*np+p)
	}
	for _, e := range redir {
		if !e.multi && e.appliesTo(port) {
			m.defLanes[e.plane] &^= e.lane
		}
	}
}

// markDirty queues a cell for CFst re-application. Callers gate on
// hasCFst so fault-free-of-CFst batches never take the branch.
//
//mbist:hotpath
func (m *LaneInjected) markDirty(cell int) {
	if !m.dirty[cell] {
		m.dirty[cell] = true
		m.dirtyList = append(m.dirtyList, int32(cell))
	}
}

// Write stores data at addr through port in every lane at once,
// applying each lane's fault behaviour.
//
//mbist:hotpath
func (m *LaneInjected) Write(port, addr int, data uint64) {
	m.checkAccess(port, addr)
	redir := m.afRedir[addr]
	// Lanes whose decoder drops the write (AFNone) or redirects it
	// entirely (AFMap) skip the normal cells; AFMulti lanes write both.
	m.defaultDecode(port, addr, redir)
	np := m.np
	for bit := 0; bit < m.width; bit++ {
		cell := addr*m.width + bit
		var vplane uint64
		if data>>uint(bit)&1 == 1 {
			vplane = ^uint64(0)
		}
		for p := 0; p < np; p++ {
			m.writeCell(port, cell, p, vplane, m.defLanes[p])
		}
		// Writes reset read-disturb accumulation. The shared counter
		// tracks the default-decode access sequence, which is exact for
		// every lane that can carry an RDF fault (an RDF lane never has
		// a decoder fault of its own).
		m.consecReads[cell] = 0
		for _, e := range redir {
			if !e.appliesTo(port) {
				continue
			}
			m.writeCell(port, e.aggAddr*m.width+bit, e.plane, vplane, e.lane)
		}
	}
	m.applyStateCFs()
}

// writeCell updates one plane of one cell within laneMask, applying
// write-path faults and firing coupling triggers for lanes whose cell
// transitioned.
//
//mbist:hotpath
func (m *LaneInjected) writeCell(port, cell, plane int, vplane, laneMask uint64) {
	i := cell*m.np + plane
	old := m.planes[i]
	eff := vplane
	if w := m.wmask.at(port, i); w != nil {
		// Stuck-at lanes hold their value regardless of the write.
		eff = (eff &^ w[wSA0]) | w[wSA1]
		// Transition faults: ⟨↑⟩ lanes cannot rise, ⟨↓⟩ lanes cannot fall.
		eff &^= w[wTFUp] & ^old
		eff |= w[wTFDown] & old
		// Write-disturb: a non-transition write flips the cell.
		eff |= w[wWDF0] & ^old & ^vplane
		eff &^= w[wWDF1] & old & vplane
	}

	next := (old &^ laneMask) | (eff & laneMask)
	m.planes[i] = next

	changed := old ^ next
	if changed == 0 {
		return
	}
	if m.hasCFst {
		m.markDirty(cell)
	}
	if trig := m.cfTrig[cell]; len(trig) > 0 {
		rose := changed & next
		fell := changed & old
		for _, e := range trig {
			if e.plane != plane {
				continue
			}
			var fire uint64
			if e.aggVal {
				fire = rose & e.lane
			} else {
				fire = fell & e.lane
			}
			if fire == 0 {
				continue
			}
			// Victim updates are direct (non-cascading), the standard
			// single-fault simulation semantics.
			vi := e.victim*m.np + plane
			if e.kind == CFin {
				m.planes[vi] ^= fire
			} else if e.value {
				m.planes[vi] |= fire
			} else {
				m.planes[vi] &^= fire
			}
			if m.hasCFst {
				m.markDirty(e.victim)
			}
		}
	}
}

// applyStateCFs re-applies CFst entries whose aggressor or victim cell
// changed since the last application. Entries of untouched cells are
// exact no-ops (their condition and victim bits are unchanged, and
// entries live in disjoint lanes so applications cannot interact), so
// the dirty filter preserves the re-apply-after-every-write semantics
// of the scalar model. Applying an entry twice (its cells both dirty)
// is idempotent.
//
//mbist:hotpath
func (m *LaneInjected) applyStateCFs() {
	if len(m.dirtyList) == 0 {
		return
	}
	for _, c := range m.dirtyList {
		m.dirty[c] = false
		for _, ei := range m.cfStateByCell[c] {
			e := &m.cfState[ei]
			cond := m.planes[e.agg*m.np+e.plane]
			if !e.aggVal {
				cond = ^cond
			}
			cond &= e.lane
			vi := e.victim*m.np + e.plane
			if e.value {
				m.planes[vi] |= cond
			} else {
				m.planes[vi] &^= cond
			}
		}
	}
	m.dirtyList = m.dirtyList[:0]
}

// ReadLanes reads the word at addr through port in every lane at once
// and appends width×Planes() per-bit result planes to dst: bit b of
// dst[bit*Planes()+p] is logical lane p*64+b's read value of word bit
// `bit`. It applies read-path fault behaviour — including its side
// effects on cell state, sense latches and read-disturb counters —
// lane-exactly.
//
//mbist:hotpath
func (m *LaneInjected) ReadLanes(port, addr int, dst []uint64) []uint64 {
	m.checkAccess(port, addr)
	redir := m.afRedir[addr]
	m.defaultDecode(port, addr, redir)
	np := m.np
	for bit := 0; bit < m.width; bit++ {
		cell := addr*m.width + bit
		// One architectural read of the default-decoded cell, however
		// many planes carry it.
		m.consecReads[cell]++
		for p := 0; p < np; p++ {
			v := m.readCell(port, cell, bit, p, m.defLanes[p])
			if noneLanes := m.afNone.at(port, addr*np+p); noneLanes != 0 {
				// No cell selected: the data bus floats; model as
				// all-zeros and reset the sense latch on those lanes.
				v &^= noneLanes
				m.senseLatch[port][bit*np+p] &^= noneLanes
			}
			m.readVals[p] = v
		}
		for _, e := range redir {
			if !e.appliesTo(port) {
				continue
			}
			av := m.readCell(port, e.aggAddr*m.width+bit, bit, e.plane, e.lane)
			if e.multi {
				// Multi-select reads see the wired-AND of both cells.
				m.readVals[e.plane] &^= e.lane &^ av
			} else {
				m.readVals[e.plane] = (m.readVals[e.plane] &^ e.lane) | (av & e.lane)
			}
		}
		// readVals is sized for the plane capacity; only the active
		// planes carry lanes when a batch narrower than capacity is
		// resident (ResetPlanes with planes < cap), so append exactly
		// np entries per bit as documented.
		dst = append(dst, m.readVals[:np]...)
	}
	return dst
}

// readCell senses one plane of one cell within laneMask, applying
// read-path faults. The consecutive-read counter is maintained by the
// caller, once per architectural read of the default-decoded cell
// (redirected aggressor reads never count — exact for RDF lanes, which
// never carry a decoder fault of their own; see Write).
//
//mbist:hotpath
func (m *LaneInjected) readCell(port, cell, bit, plane int, laneMask uint64) uint64 {
	i := cell*m.np + plane
	raw := m.planes[i]
	v := raw
	var sofLanes uint64
	if r := m.rmask.at(port, i); r != nil {
		v = (v &^ r[rSA0]) | r[rSA1]
		if m.consecReads[cell] >= 3 {
			// Disconnected pull-up/down: the 3rd+ consecutive read decays
			// to the fault value.
			v = (v &^ r[rRDF0]) | r[rRDF1]
		}
		// Incorrect-read: the complement is returned, the cell unchanged.
		v |= r[rIRF0] & ^raw
		v &^= r[rIRF1] & raw
		// Deceptive read-destructive: the read returns the correct value
		// but flips the cell.
		set := r[rDRDF0] & ^raw & laneMask
		clr := r[rDRDF1] & raw & laneMask
		if set|clr != 0 {
			m.planes[i] = (raw | set) &^ clr
			if m.hasCFst {
				// The flip must reach any CFst watching this cell at the
				// next write/pause application point.
				m.markDirty(cell)
			}
		}
		sofLanes = r[rSOF] & laneMask
	}
	// Stuck-open lanes re-deliver the sense amplifier's previous value
	// and do not refresh it; every other lane latches what it sensed.
	li := bit*m.np + plane
	latch := m.senseLatch[port][li]
	out := (v &^ sofLanes) | (latch & sofLanes)
	update := laneMask &^ sofLanes
	m.senseLatch[port][li] = (latch &^ update) | (v & update)
	return out
}

// Pause models a retention delay: every DRF victim leaks to its value
// in its lane.
//
//mbist:hotpath
func (m *LaneInjected) Pause() {
	for _, e := range m.drf {
		i := e.cell*m.np + e.plane
		if e.value {
			m.planes[i] |= e.lane
		} else {
			m.planes[i] &^= e.lane
		}
		if m.hasCFst {
			m.markDirty(e.cell)
		}
	}
	m.applyStateCFs()
}

// CellPlane returns the raw stored plane-0 lane word of a cell (test
// introspection).
func (m *LaneInjected) CellPlane(cell int) uint64 { return m.planes[cell*m.np] }

// LaneCellState returns logical lane k's stored value of a cell (test
// introspection; lane 0 is the good machine).
func (m *LaneInjected) LaneCellState(lane, cell int) bool {
	return m.planes[cell*m.np+lane>>6]>>uint(lane&63)&1 == 1
}
