package faults

import "fmt"

// MaxLanes is the number of fault lanes a LaneInjected carries: 64
// uint64 bit-positions minus lane 0, which is reserved for the
// fault-free (good) machine.
const MaxLanes = 63

// LaneInjected packs one good machine and up to 63 single-fault
// machines into uint64 bit-planes, one plane per bit cell: bit k of
// planes[cell] is the cell value of lane k's machine. Lane 0 carries no
// fault; lane k (k >= 1) carries exactly faults[k-1] of the batch. All
// fault behaviour of the scalar Injected model — stuck-at, transition,
// write-disturb, stuck-open, retention, read-disturb, incorrect-read,
// deceptive-read, coupling and address-decoder faults, with per-port
// visibility — becomes lane-masked bitwise operations, so one replayed
// operation stream grades a whole batch at once (the PPSFP idea of
// parallel-pattern single-fault propagation applied to the behavioural
// memory model).
//
// Because every lane holds at most ONE fault, fault interactions within
// a lane cannot occur and the per-kind mask applications are
// order-independent; lane k is bit-identical to a scalar Injected
// carrying only fault k (asserted by TestLaneInjectedMatchesScalar).
type LaneInjected struct {
	size  int
	width int
	ports int

	planes []uint64 // size*width cell planes, bit k = lane k's cell

	// Write-path victim masks, per port (AnyPort faults set every port).
	sa0, sa1     portCellMask
	tfUp, tfDown portCellMask // cannot rise / cannot fall
	wdf0, wdf1   portCellMask // non-transition w0 / w1 flips

	// Read-path victim masks.
	sof          portCellMask
	rdf0, rdf1   portCellMask // 3rd+ consecutive read returns 0 / 1
	irf0, irf1   portCellMask // reading a 0 / 1 returns the complement
	drdf0, drdf1 portCellMask // reading a 0 / 1 flips the cell

	drf []drfEntry // retention leaks, applied on Pause (port-agnostic)

	cfTrig  [][]cfEntry // aggressor cell -> CFin/CFid entries
	cfState []cfEntry   // CFst entries, re-applied after writes/pauses

	afNone  portAddrMask // lanes whose address selects no cell
	afRedir [][]afEntry  // addr -> AFMap/AFMulti redirections

	faults []Fault // the batch, lane k = faults[k-1]

	senseLatch  [][]uint64 // [port][bit lane] previous sensed planes
	consecReads []int32    // per cell: consecutive reads since last write
}

// portCellMask is a lane mask per (port, cell), allocated lazily on the
// first fault of its kind; the nil mask reads as zero everywhere so
// absent fault kinds cost one branch per access.
type portCellMask struct {
	byPort [][]uint64
}

func (m *portCellMask) add(ports, cells, port, cell int, lane uint64) {
	if m.byPort == nil {
		m.byPort = make([][]uint64, ports)
		for p := range m.byPort {
			m.byPort[p] = make([]uint64, cells)
		}
	}
	if port == AnyPort {
		for p := range m.byPort {
			m.byPort[p][cell] |= lane
		}
		return
	}
	m.byPort[port][cell] |= lane
}

func (m *portCellMask) at(port, cell int) uint64 {
	if m.byPort == nil {
		return 0
	}
	return m.byPort[port][cell]
}

// portAddrMask is portCellMask indexed by word address.
type portAddrMask struct {
	byPort [][]uint64
}

func (m *portAddrMask) add(ports, size, port, addr int, lane uint64) {
	if m.byPort == nil {
		m.byPort = make([][]uint64, ports)
		for p := range m.byPort {
			m.byPort[p] = make([]uint64, size)
		}
	}
	if port == AnyPort {
		for p := range m.byPort {
			m.byPort[p][addr] |= lane
		}
		return
	}
	m.byPort[port][addr] |= lane
}

func (m *portAddrMask) at(port, addr int) uint64 {
	if m.byPort == nil {
		return 0
	}
	return m.byPort[port][addr]
}

// cfEntry is one coupling fault: lane is the single lane bit carrying
// it.
type cfEntry struct {
	agg    int
	victim int
	lane   uint64
	kind   Kind
	aggVal bool
	value  bool
}

// drfEntry is one retention leak.
type drfEntry struct {
	cell  int
	lane  uint64
	value bool
}

// afEntry is one AFMap/AFMulti redirection at its faulty address.
type afEntry struct {
	lane    uint64
	aggAddr int
	multi   bool
	port    int
}

func (e afEntry) appliesTo(port int) bool {
	return e.port == AnyPort || e.port == port
}

// NewLaneInjected returns a lane-parallel memory of the given geometry
// with batch[i] injected into lane i+1 (lane 0 stays fault-free). The
// batch holds at most MaxLanes faults; fault validation matches the
// scalar NewInjected. All cells start at zero.
func NewLaneInjected(size, width, ports int, batch []Fault) *LaneInjected {
	if size <= 0 || width < 1 || width > 64 || ports <= 0 {
		panic(fmt.Sprintf("faults: bad geometry %dx%d, %d ports", size, width, ports))
	}
	if len(batch) > MaxLanes {
		panic(fmt.Sprintf("faults: batch of %d exceeds %d lanes", len(batch), MaxLanes))
	}
	m := &LaneInjected{
		size:        size,
		width:       width,
		ports:       ports,
		planes:      make([]uint64, size*width),
		cfTrig:      make([][]cfEntry, size*width),
		afRedir:     make([][]afEntry, size),
		faults:      batch,
		consecReads: make([]int32, size*width),
	}
	m.senseLatch = make([][]uint64, ports)
	for p := range m.senseLatch {
		m.senseLatch[p] = make([]uint64, width)
	}
	for i, f := range batch {
		m.inject(f, uint64(1)<<uint(i+1))
	}
	return m
}

func (m *LaneInjected) inject(f Fault, lane uint64) {
	cells := len(m.planes)
	checkCell := func(c int) {
		if c < 0 || c >= cells {
			panic(fmt.Sprintf("faults: victim cell %d out of range", c))
		}
	}
	switch f.Kind {
	case SA:
		checkCell(f.Cell)
		if f.Value {
			m.sa1.add(m.ports, cells, f.Port, f.Cell, lane)
		} else {
			m.sa0.add(m.ports, cells, f.Port, f.Cell, lane)
		}
	case TF:
		checkCell(f.Cell)
		if f.Value {
			m.tfUp.add(m.ports, cells, f.Port, f.Cell, lane)
		} else {
			m.tfDown.add(m.ports, cells, f.Port, f.Cell, lane)
		}
	case WDF:
		checkCell(f.Cell)
		if f.Value {
			m.wdf1.add(m.ports, cells, f.Port, f.Cell, lane)
		} else {
			m.wdf0.add(m.ports, cells, f.Port, f.Cell, lane)
		}
	case SOF:
		checkCell(f.Cell)
		m.sof.add(m.ports, cells, f.Port, f.Cell, lane)
	case RDF:
		checkCell(f.Cell)
		if f.Value {
			m.rdf1.add(m.ports, cells, f.Port, f.Cell, lane)
		} else {
			m.rdf0.add(m.ports, cells, f.Port, f.Cell, lane)
		}
	case IRF:
		checkCell(f.Cell)
		if f.Value {
			m.irf1.add(m.ports, cells, f.Port, f.Cell, lane)
		} else {
			m.irf0.add(m.ports, cells, f.Port, f.Cell, lane)
		}
	case DRDF:
		checkCell(f.Cell)
		if f.Value {
			m.drdf1.add(m.ports, cells, f.Port, f.Cell, lane)
		} else {
			m.drdf0.add(m.ports, cells, f.Port, f.Cell, lane)
		}
	case DRF:
		checkCell(f.Cell)
		m.drf = append(m.drf, drfEntry{cell: f.Cell, lane: lane, value: f.Value})
	case CFin, CFid:
		if f.Cell < 0 || f.Cell >= cells || f.Aggressor < 0 || f.Aggressor >= cells {
			panic("faults: coupling fault cell out of range")
		}
		if f.Cell == f.Aggressor {
			panic("faults: coupling fault victim == aggressor")
		}
		m.cfTrig[f.Aggressor] = append(m.cfTrig[f.Aggressor], cfEntry{
			agg: f.Aggressor, victim: f.Cell, lane: lane,
			kind: f.Kind, aggVal: f.AggVal, value: f.Value,
		})
	case CFst:
		if f.Cell == f.Aggressor {
			panic("faults: coupling fault victim == aggressor")
		}
		m.cfState = append(m.cfState, cfEntry{
			agg: f.Aggressor, victim: f.Cell, lane: lane,
			kind: f.Kind, aggVal: f.AggVal, value: f.Value,
		})
	case AFNone, AFMap, AFMulti:
		if f.Addr < 0 || f.Addr >= m.size {
			panic("faults: AF address out of range")
		}
		if f.Kind == AFNone {
			m.afNone.add(m.ports, m.size, f.Port, f.Addr, lane)
		} else {
			m.afRedir[f.Addr] = append(m.afRedir[f.Addr], afEntry{
				lane: lane, aggAddr: f.AggAddr, multi: f.Kind == AFMulti, port: f.Port,
			})
		}
	default:
		panic("faults: unknown fault kind")
	}
}

// Size returns the number of word addresses.
func (m *LaneInjected) Size() int { return m.size }

// Width returns the bits per word.
func (m *LaneInjected) Width() int { return m.width }

// Ports returns the number of access ports.
func (m *LaneInjected) Ports() int { return m.ports }

// Lanes returns the number of occupied fault lanes (the batch size).
func (m *LaneInjected) Lanes() int { return len(m.faults) }

// FaultMask returns the lane mask covering the occupied fault lanes
// (bits 1..Lanes()).
func (m *LaneInjected) FaultMask() uint64 {
	if len(m.faults) == 63 {
		return ^uint64(0) &^ 1
	}
	return (uint64(1)<<uint(len(m.faults)+1) - 1) &^ 1
}

func (m *LaneInjected) checkAccess(port, addr int) {
	if port < 0 || port >= m.ports {
		panic(fmt.Sprintf("faults: port %d out of [0,%d)", port, m.ports))
	}
	if addr < 0 || addr >= m.size {
		panic(fmt.Sprintf("faults: address %d out of [0,%d)", addr, m.size))
	}
}

// Write stores data at addr through port in every lane at once,
// applying each lane's fault behaviour.
func (m *LaneInjected) Write(port, addr int, data uint64) {
	m.checkAccess(port, addr)
	noneLanes := m.afNone.at(port, addr)
	redir := m.afRedir[addr]
	var mapLanes uint64
	for _, e := range redir {
		if !e.multi && e.appliesTo(port) {
			mapLanes |= e.lane
		}
	}
	// Lanes whose decoder drops the write (AFNone) or redirects it
	// entirely (AFMap) skip the normal cells; AFMulti lanes write both.
	defLanes := ^uint64(0) &^ (noneLanes | mapLanes)
	for bit := 0; bit < m.width; bit++ {
		cell := addr*m.width + bit
		var vplane uint64
		if data>>uint(bit)&1 == 1 {
			vplane = ^uint64(0)
		}
		m.writeCell(port, cell, vplane, defLanes)
		// Writes reset read-disturb accumulation. The shared counter
		// tracks the default-decode access sequence, which is exact for
		// every lane that can carry an RDF fault (an RDF lane never has
		// a decoder fault of its own).
		m.consecReads[cell] = 0
		for _, e := range redir {
			if !e.appliesTo(port) {
				continue
			}
			m.writeCell(port, e.aggAddr*m.width+bit, vplane, e.lane)
		}
	}
	m.applyStateCFs()
}

// writeCell updates one cell plane within laneMask, applying write-path
// faults and firing coupling triggers for lanes whose cell transitioned.
func (m *LaneInjected) writeCell(port, cell int, vplane, laneMask uint64) {
	old := m.planes[cell]
	eff := vplane
	// Stuck-at lanes hold their value regardless of the write.
	eff = (eff &^ m.sa0.at(port, cell)) | m.sa1.at(port, cell)
	// Transition faults: ⟨↑⟩ lanes cannot rise, ⟨↓⟩ lanes cannot fall.
	eff &^= m.tfUp.at(port, cell) & ^old
	eff |= m.tfDown.at(port, cell) & old
	// Write-disturb: a non-transition write flips the cell.
	eff |= m.wdf0.at(port, cell) & ^old & ^vplane
	eff &^= m.wdf1.at(port, cell) & old & vplane

	next := (old &^ laneMask) | (eff & laneMask)
	m.planes[cell] = next

	changed := old ^ next
	if changed == 0 {
		return
	}
	if trig := m.cfTrig[cell]; trig != nil {
		rose := changed & next
		fell := changed & old
		for _, e := range trig {
			var fire uint64
			if e.aggVal {
				fire = rose & e.lane
			} else {
				fire = fell & e.lane
			}
			if fire == 0 {
				continue
			}
			// Victim updates are direct (non-cascading), the standard
			// single-fault simulation semantics.
			if e.kind == CFin {
				m.planes[e.victim] ^= fire
			} else if e.value {
				m.planes[e.victim] |= fire
			} else {
				m.planes[e.victim] &^= fire
			}
		}
	}
}

func (m *LaneInjected) applyStateCFs() {
	for _, e := range m.cfState {
		cond := m.planes[e.agg]
		if !e.aggVal {
			cond = ^cond
		}
		cond &= e.lane
		if e.value {
			m.planes[e.victim] |= cond
		} else {
			m.planes[e.victim] &^= cond
		}
	}
}

// ReadLanes reads the word at addr through port in every lane at once
// and appends the width per-bit result planes to dst (bit k of
// dst[bit] is lane k's read value of that bit). It applies read-path
// fault behaviour — including its side effects on cell state, sense
// latches and read-disturb counters — lane-exactly.
func (m *LaneInjected) ReadLanes(port, addr int, dst []uint64) []uint64 {
	m.checkAccess(port, addr)
	noneLanes := m.afNone.at(port, addr)
	redir := m.afRedir[addr]
	var mapLanes uint64
	for _, e := range redir {
		if !e.multi && e.appliesTo(port) {
			mapLanes |= e.lane
		}
	}
	defLanes := ^uint64(0) &^ (noneLanes | mapLanes)
	for bit := 0; bit < m.width; bit++ {
		cell := addr*m.width + bit
		v := m.readCell(port, cell, bit, defLanes, true)
		if noneLanes != 0 {
			// No cell selected: the data bus floats; model as
			// all-zeros and reset the sense latch on those lanes.
			v &^= noneLanes
			m.senseLatch[port][bit] &^= noneLanes
		}
		for _, e := range redir {
			if !e.appliesTo(port) {
				continue
			}
			av := m.readCell(port, e.aggAddr*m.width+bit, bit, e.lane, false)
			if e.multi {
				// Multi-select reads see the wired-AND of both cells.
				v &^= e.lane &^ av
			} else {
				v = (v &^ e.lane) | (av & e.lane)
			}
		}
		dst = append(dst, v)
	}
	return dst
}

// readCell senses one cell plane within laneMask, applying read-path
// faults. countRead marks default-decode accesses, which drive the
// shared consecutive-read counter (exact for RDF lanes; see Write).
func (m *LaneInjected) readCell(port, cell, bit int, laneMask uint64, countRead bool) uint64 {
	raw := m.planes[cell]
	v := (raw &^ m.sa0.at(port, cell)) | m.sa1.at(port, cell)
	if countRead {
		m.consecReads[cell]++
	}
	if m.consecReads[cell] >= 3 {
		// Disconnected pull-up/down: the 3rd+ consecutive read decays
		// to the fault value.
		v = (v &^ m.rdf0.at(port, cell)) | m.rdf1.at(port, cell)
	}
	// Incorrect-read: the complement is returned, the cell unchanged.
	v |= m.irf0.at(port, cell) & ^raw
	v &^= m.irf1.at(port, cell) & raw
	// Deceptive read-destructive: the read returns the correct value
	// but flips the cell.
	set := m.drdf0.at(port, cell) & ^raw & laneMask
	clear := m.drdf1.at(port, cell) & raw & laneMask
	if set|clear != 0 {
		m.planes[cell] = (raw | set) &^ clear
	}
	// Stuck-open lanes re-deliver the sense amplifier's previous value
	// and do not refresh it; every other lane latches what it sensed.
	sofLanes := m.sof.at(port, cell) & laneMask
	latch := m.senseLatch[port][bit]
	out := (v &^ sofLanes) | (latch & sofLanes)
	update := laneMask &^ sofLanes
	m.senseLatch[port][bit] = (latch &^ update) | (v & update)
	return out
}

// Pause models a retention delay: every DRF victim leaks to its value
// in its lane.
func (m *LaneInjected) Pause() {
	for _, e := range m.drf {
		if e.value {
			m.planes[e.cell] |= e.lane
		} else {
			m.planes[e.cell] &^= e.lane
		}
	}
	m.applyStateCFs()
}

// CellPlane returns the raw stored lane plane of a cell (test
// introspection).
func (m *LaneInjected) CellPlane(cell int) uint64 { return m.planes[cell] }

// LaneCellState returns lane k's stored value of a cell (test
// introspection; lane 0 is the good machine).
func (m *LaneInjected) LaneCellState(lane, cell int) bool {
	return m.planes[cell]>>uint(lane)&1 == 1
}
