package faults

import (
	"math/rand"
	"testing"
)

// laneWord extracts lane k's word from the per-bit planes ReadLanes
// returned.
func laneWord(planes []uint64, lane int) uint64 {
	var w uint64
	for bit, p := range planes {
		w |= (p >> uint(lane) & 1) << uint(bit)
	}
	return w
}

// TestLaneInjectedMatchesScalar is the lane-equivalence property test:
// a random operation sequence (reads, writes and pauses over random
// ports and addresses) driven through a LaneInjected must leave every
// lane k bit-identical — every read value and every final cell state —
// to a scalar Injected carrying only fault k, across every fault kind
// in the universe. Lane 0 must match a fault-free Injected.
func TestLaneInjectedMatchesScalar(t *testing.T) {
	geometries := []struct {
		size, width, ports int
	}{
		{8, 1, 1},
		{4, 2, 2},
		{5, 3, 1},
	}
	for _, g := range geometries {
		universe := Universe(g.size, g.width, UniverseOpts{Ports: g.ports})
		rng := rand.New(rand.NewSource(int64(g.size*1000 + g.width*10 + g.ports)))
		mask := uint64(1)<<uint(g.width) - 1
		for start := 0; start < len(universe); start += MaxLanes {
			end := start + MaxLanes
			if end > len(universe) {
				end = len(universe)
			}
			batch := universe[start:end]
			lanes := NewLaneInjected(g.size, g.width, g.ports, batch)
			// scalars[0] is the fault-free machine (lane 0), scalars[k]
			// carries batch[k-1].
			scalars := make([]*Injected, len(batch)+1)
			scalars[0] = NewInjected(g.size, g.width, g.ports)
			for i, f := range batch {
				scalars[i+1] = NewInjected(g.size, g.width, g.ports, f)
			}

			var planes []uint64
			for step := 0; step < 400; step++ {
				port := rng.Intn(g.ports)
				addr := rng.Intn(g.size)
				switch r := rng.Float64(); {
				case r < 0.45:
					data := rng.Uint64() & mask
					lanes.Write(port, addr, data)
					for _, s := range scalars {
						s.Write(port, addr, data)
					}
				case r < 0.9:
					planes = lanes.ReadLanes(port, addr, planes[:0])
					for k, s := range scalars {
						want := s.Read(port, addr)
						if got := laneWord(planes, k); got != want {
							fault := "none (good machine)"
							if k > 0 {
								fault = batch[k-1].String()
							}
							t.Fatalf("%dx%d/%dp step %d: read(p%d,a%d) lane %d = %0*b, scalar %0*b (fault %s)",
								g.size, g.width, g.ports, step, port, addr, k,
								g.width, got, g.width, want, fault)
						}
					}
				default:
					lanes.Pause()
					for _, s := range scalars {
						s.Pause()
					}
				}
			}

			for cell := 0; cell < g.size*g.width; cell++ {
				for k, s := range scalars {
					if lanes.LaneCellState(k, cell) != s.CellState(cell) {
						fault := "none (good machine)"
						if k > 0 {
							fault = batch[k-1].String()
						}
						t.Fatalf("%dx%d/%dp: final cell %d lane %d = %v, scalar %v (fault %s)",
							g.size, g.width, g.ports, cell, k,
							lanes.LaneCellState(k, cell), s.CellState(cell), fault)
					}
				}
			}
		}
	}
}

// TestLaneInjectedMarchSequence drives a march-like deterministic
// sequence (solid write sweep, read sweeps up and down, pause) so the
// consecutive-read and retention paths are hit with certainty rather
// than by random luck.
func TestLaneInjectedMarchSequence(t *testing.T) {
	size, width, ports := 6, 1, 1
	universe := Universe(size, width, UniverseOpts{})
	for start := 0; start < len(universe); start += MaxLanes {
		end := start + MaxLanes
		if end > len(universe) {
			end = len(universe)
		}
		batch := universe[start:end]
		lanes := NewLaneInjected(size, width, ports, batch)
		scalars := make([]*Injected, len(batch)+1)
		scalars[0] = NewInjected(size, width, ports)
		for i, f := range batch {
			scalars[i+1] = NewInjected(size, width, ports, f)
		}

		var planes []uint64
		check := func(what string, addr int) {
			t.Helper()
			planes = lanes.ReadLanes(0, addr, planes[:0])
			for k, s := range scalars {
				want := s.Read(0, addr)
				if got := laneWord(planes, k); got != want {
					fault := "none"
					if k > 0 {
						fault = batch[k-1].String()
					}
					t.Fatalf("%s a%d lane %d = %b, scalar %b (fault %s)", what, addr, k, got, want, fault)
				}
			}
		}
		write := func(addr int, data uint64) {
			lanes.Write(0, addr, data)
			for _, s := range scalars {
				s.Write(0, addr, data)
			}
		}
		pause := func() {
			lanes.Pause()
			for _, s := range scalars {
				s.Pause()
			}
		}

		for a := 0; a < size; a++ {
			write(a, 0)
		}
		for a := 0; a < size; a++ {
			check("r0", a)
			write(a, 1)
			check("r1", a)
		}
		pause()
		for a := size - 1; a >= 0; a-- {
			// Triple consecutive reads excite RDF and DRDF lanes.
			check("r1a", a)
			check("r1b", a)
			check("r1c", a)
			write(a, 0)
		}
		pause()
		for a := 0; a < size; a++ {
			check("r0-final", a)
		}
	}
}

// TestLaneInjectedPanics pins the constructor's validation, matching
// the scalar model.
func TestLaneInjectedPanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	expectPanic("bad geometry", func() { NewLaneInjected(0, 1, 1, nil) })
	expectPanic("oversized batch", func() {
		NewLaneInjected(128, 1, 1, Universe(128, 1, UniverseOpts{}))
	})
	expectPanic("victim out of range", func() {
		NewLaneInjected(4, 1, 1, []Fault{{Kind: SA, Cell: 99, Port: AnyPort}})
	})
	expectPanic("victim == aggressor", func() {
		NewLaneInjected(4, 1, 1, []Fault{{Kind: CFin, Cell: 1, Aggressor: 1, Port: AnyPort}})
	})
}

// TestLaneInjectedFaultMask pins the occupied-lane mask.
func TestLaneInjectedFaultMask(t *testing.T) {
	m := NewLaneInjected(4, 1, 1, []Fault{
		{Kind: SA, Cell: 0, Port: AnyPort},
		{Kind: SA, Cell: 1, Value: true, Port: AnyPort},
	})
	if got, want := m.FaultMask(), uint64(0b110); got != want {
		t.Errorf("FaultMask() = %b, want %b", got, want)
	}
	if m.Lanes() != 2 {
		t.Errorf("Lanes() = %d, want 2", m.Lanes())
	}
	full := NewLaneInjected(128, 1, 1, Universe(128, 1, UniverseOpts{})[:63])
	if got, want := full.FaultMask(), ^uint64(0)&^1; got != want {
		t.Errorf("full FaultMask() = %x, want %x", got, want)
	}
}
