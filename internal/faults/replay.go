package faults

import "fmt"

// Caps is the bitset of fault-mechanism capabilities a batch needs
// from the replay engine. Each injected fault contributes the
// machinery its kind requires; the union selects the cheapest replay
// kernel that is exact for the whole batch (see Kernel).
type Caps uint8

const (
	// CapAF: address-decoder faults — redirect decode on every access.
	CapAF Caps = 1 << iota
	// CapCoupling: aggressor-triggered coupling (CFin/CFid/CFst) —
	// transition detection and trigger firing on every write.
	CapCoupling
	// CapState: state coupling (CFst) — dirty tracking plus condition
	// re-application after every write and pause.
	CapState
	// CapLatch: read-path state — SOF sense latches, RDF consecutive-
	// read counters, DRDF cell flips.
	CapLatch
	// CapPause: retention leaks (DRF) applied on Pause.
	CapPause
)

// capsOf maps a fault kind to the replay capabilities it requires.
// SA/TF/WDF/IRF are pure mask applications and require none.
func capsOf(k Kind) Caps {
	switch k {
	case SOF, RDF, DRDF:
		return CapLatch
	case DRF:
		return CapPause
	case CFin, CFid:
		return CapCoupling
	case CFst:
		return CapCoupling | CapState
	case AFNone, AFMap, AFMulti:
		return CapAF
	default:
		return 0
	}
}

// Caps returns the union of the current batch's capabilities.
func (m *LaneInjected) Caps() Caps { return m.caps }

// Kernel identifies which specialized replay loop a batch's
// capabilities admit. Kernels are exact, not approximate: each one is
// the general machine with the code paths its excluded capabilities
// would exercise provably dead, so every kernel produces bit-identical
// lane verdicts to the general path (asserted by TestReplayKernels*).
type Kernel uint8

const (
	// KernelGeneral is the catch-all: full Write/ReadLanes semantics.
	KernelGeneral Kernel = iota
	// KernelMask handles pure mask faults (SA/TF/WDF/IRF, plus DRF
	// pause leaks): no redirect decode, no triggers, no dirty tracking,
	// no read-path state.
	KernelMask
	// KernelLatch adds read-path state (SOF/RDF/DRDF) to KernelMask.
	KernelLatch
	// KernelCoupling adds write triggers and CFst re-application to
	// KernelMask.
	KernelCoupling
	// KernelAF handles decoder-fault-only batches: redirect decode
	// without any mask, trigger or read-path machinery.
	KernelAF
)

// String names the kernel as reported in obs metrics and test output.
func (k Kernel) String() string {
	switch k {
	case KernelMask:
		return "mask"
	case KernelLatch:
		return "latch"
	case KernelCoupling:
		return "coupling"
	case KernelAF:
		return "af"
	default:
		return "general"
	}
}

// Kernel selects the cheapest exact kernel for the current batch.
func (m *LaneInjected) Kernel() Kernel {
	switch {
	case m.caps&^CapPause == 0:
		return KernelMask
	case m.caps&^(CapLatch|CapPause) == 0:
		return KernelLatch
	case m.caps&^(CapCoupling|CapState|CapPause) == 0:
		return KernelCoupling
	case m.caps == CapAF:
		return KernelAF
	default:
		return KernelGeneral
	}
}

// µop opcodes.
const (
	// UOpWrite stores Data at Addr through Port.
	UOpWrite uint8 = iota
	// UOpRead reads Addr through Port and compares against Data, the
	// expected fault-free value.
	UOpRead
	// UOpPause models a retention delay (march "Del" element).
	UOpPause
)

// UOp is one compiled micro-operation of a march stream: the port,
// address and data of a march primitive with the first cell index
// (Addr×width) pre-resolved, so replay kernels index cell planes with
// one multiply per op instead of one per bit.
type UOp struct {
	// Data is the written word (UOpWrite) or the expected fault-free
	// read value (UOpRead).
	Data uint64
	// Cell is Addr*width, the plane-array row of the word's first bit.
	Cell int32
	// Addr is the word address.
	Addr int32
	// Kind is the opcode (UOpWrite/UOpRead/UOpPause).
	Kind uint8
	// Port is the access port.
	Port uint8
}

// CompiledStream is a validated, immutable µop program for one
// (algorithm, geometry): every port and address is bounds-checked at
// compile time, so replay kernels run without per-op access checks.
// Compile once (it is content-addressed by the coverage layer), replay
// per batch.
type CompiledStream struct {
	size  int
	width int
	ports int
	ops   []UOp
}

// NewCompiledStream validates ops against the geometry and returns the
// compiled program. The op slice is copied: a CompiledStream never
// aliases caller memory, so cached streams are safe to share across
// grading workers.
func NewCompiledStream(size, width, ports int, ops []UOp) (*CompiledStream, error) {
	if size <= 0 || width < 1 || width > 64 || ports <= 0 {
		return nil, fmt.Errorf("faults: bad geometry %dx%d, %d ports", size, width, ports)
	}
	var wordMask uint64 = ^uint64(0)
	if width < 64 {
		wordMask = uint64(1)<<uint(width) - 1
	}
	for i := range ops {
		op := &ops[i]
		switch op.Kind {
		case UOpPause:
			continue
		case UOpWrite, UOpRead:
		default:
			return nil, fmt.Errorf("faults: µop %d has unknown opcode %d", i, op.Kind)
		}
		if int(op.Port) >= ports {
			return nil, fmt.Errorf("faults: µop %d port %d out of [0,%d)", i, op.Port, ports)
		}
		if op.Addr < 0 || int(op.Addr) >= size {
			return nil, fmt.Errorf("faults: µop %d address %d out of [0,%d)", i, op.Addr, size)
		}
		if int(op.Cell) != int(op.Addr)*width {
			return nil, fmt.Errorf("faults: µop %d cell %d != addr %d × width %d", i, op.Cell, op.Addr, width)
		}
		if op.Data&^wordMask != 0 {
			return nil, fmt.Errorf("faults: µop %d data %#x exceeds %d-bit word", i, op.Data, width)
		}
	}
	cs := &CompiledStream{size: size, width: width, ports: ports, ops: make([]UOp, len(ops))}
	copy(cs.ops, ops)
	return cs, nil
}

// Len returns the µop count.
func (cs *CompiledStream) Len() int { return len(cs.ops) }

// Geometry returns the memory geometry the stream was compiled for.
func (cs *CompiledStream) Geometry() (size, width, ports int) {
	return cs.size, cs.width, cs.ports
}

// Replay runs the compiled stream through every lane at once and
// accumulates per-plane fail masks into fail: bit b of fail[p] is set
// iff logical lane p*64+b returned a wrong value on some read. It
// dispatches to the cheapest kernel the batch's capabilities admit and
// returns which one ran.
//
// Replay early-exits once every occupied fault lane has failed (the
// verdict can no longer change), and errors out if the good machine
// (lane 0) ever misreads — the signal that the stream does not match
// this geometry's fault-free behaviour.
//
//mbist:hotpath
func (m *LaneInjected) Replay(cs *CompiledStream, fail *[MaxPlanes]uint64) (Kernel, error) {
	if cs.size != m.size || cs.width != m.width || cs.ports != m.ports {
		return 0, fmt.Errorf("faults: stream compiled for %dx%d/%d replayed on %dx%d/%d",
			cs.size, cs.width, cs.ports, m.size, m.width, m.ports)
	}
	*fail = [MaxPlanes]uint64{}
	var occ [MaxPlanes]uint64
	for p := 0; p < m.np; p++ {
		occ[p] = m.FaultMaskPlane(p)
	}
	kern := m.Kernel()
	var err error
	switch kern {
	case KernelMask:
		err = m.replayMask(cs.ops, fail, &occ)
	case KernelLatch:
		err = m.replayLatch(cs.ops, fail, &occ)
	case KernelCoupling:
		err = m.replayCoupling(cs.ops, fail, &occ)
	case KernelAF:
		err = m.replayAF(cs.ops, fail, &occ)
	default:
		err = m.replayGeneral(cs.ops, fail, &occ)
	}
	return kern, err
}

// goodLaneErr reports a good-machine misread — the compiled analogue
// of the interpreted replay's divergence error, and the trigger for
// the caller's scalar fallback.
func goodLaneErr(op *UOp) error {
	return fmt.Errorf("faults: good machine failed reading port %d addr %d", op.Port, op.Addr)
}

// replayDone reports whether every occupied lane has already failed.
//
//mbist:hotpath
func replayDone(fail, occ *[MaxPlanes]uint64, np int) bool {
	for p := 0; p < np; p++ {
		if fail[p]&occ[p] != occ[p] {
			return false
		}
	}
	return true
}

// replayMask is the pure-mask kernel: writes apply the write-path mask
// stripe, reads apply the SA/IRF read masks and compare. No decoder
// redirects, no triggers, no dirty tracking, no latch or counter
// state exist in the batch, so none are maintained.
//
//mbist:hotpath
func (m *LaneInjected) replayMask(ops []UOp, fail, occ *[MaxPlanes]uint64) error {
	np, width, planes := m.np, m.width, m.planes
	wb, rb := m.wmask.byPort, m.rmask.byPort
	for oi := range ops {
		op := &ops[oi]
		switch op.Kind {
		case UOpWrite:
			s := int(op.Cell) * np
			var wp []uint64
			if wb != nil {
				wp = wb[op.Port]
			}
			if wp == nil {
				for bit := 0; bit < width; bit++ {
					v := -(op.Data >> uint(bit) & 1)
					for p := 0; p < np; p++ {
						planes[s] = v
						s++
					}
				}
				continue
			}
			for bit := 0; bit < width; bit++ {
				v := -(op.Data >> uint(bit) & 1)
				for p := 0; p < np; p++ {
					old := planes[s]
					o := s * wStride
					eff := (v &^ wp[o+wSA0]) | wp[o+wSA1]
					eff &^= wp[o+wTFUp] &^ old
					eff |= wp[o+wTFDown] & old
					eff |= wp[o+wWDF0] &^ old &^ v
					eff &^= wp[o+wWDF1] & old & v
					planes[s] = eff
					s++
				}
			}
		case UOpRead:
			s := int(op.Cell) * np
			var rp []uint64
			if rb != nil {
				rp = rb[op.Port]
			}
			for bit := 0; bit < width; bit++ {
				exp := -(op.Data >> uint(bit) & 1)
				if rp == nil {
					for p := 0; p < np; p++ {
						fail[p] |= planes[s] ^ exp
						s++
					}
					continue
				}
				for p := 0; p < np; p++ {
					raw := planes[s]
					o := s * rStride
					v := (raw &^ rp[o+rSA0]) | rp[o+rSA1]
					v |= rp[o+rIRF0] &^ raw
					v &^= rp[o+rIRF1] & raw
					fail[p] |= v ^ exp
					s++
				}
			}
			if fail[0]&1 != 0 {
				return goodLaneErr(op)
			}
			if replayDone(fail, occ, np) {
				return nil
			}
		default: // UOpPause
			for _, e := range m.drf {
				i := e.cell*np + e.plane
				if e.value {
					planes[i] |= e.lane
				} else {
					planes[i] &^= e.lane
				}
			}
		}
	}
	return nil
}

// replayLatch extends replayMask with read-path state: RDF
// consecutive-read counters, DRDF destructive flips and SOF sense
// latches. Still no decoder or coupling machinery.
//
//mbist:hotpath
func (m *LaneInjected) replayLatch(ops []UOp, fail, occ *[MaxPlanes]uint64) error {
	np, width, planes := m.np, m.width, m.planes
	wb, rb := m.wmask.byPort, m.rmask.byPort
	for oi := range ops {
		op := &ops[oi]
		switch op.Kind {
		case UOpWrite:
			cell0 := int(op.Cell)
			s := cell0 * np
			var wp []uint64
			if wb != nil {
				wp = wb[op.Port]
			}
			for bit := 0; bit < width; bit++ {
				m.consecReads[cell0+bit] = 0
				v := -(op.Data >> uint(bit) & 1)
				if wp == nil {
					for p := 0; p < np; p++ {
						planes[s] = v
						s++
					}
					continue
				}
				for p := 0; p < np; p++ {
					old := planes[s]
					o := s * wStride
					eff := (v &^ wp[o+wSA0]) | wp[o+wSA1]
					eff &^= wp[o+wTFUp] &^ old
					eff |= wp[o+wTFDown] & old
					eff |= wp[o+wWDF0] &^ old &^ v
					eff &^= wp[o+wWDF1] & old & v
					planes[s] = eff
					s++
				}
			}
		case UOpRead:
			cell0 := int(op.Cell)
			s := cell0 * np
			var rp []uint64
			if rb != nil {
				rp = rb[op.Port]
			}
			sl := m.senseLatch[op.Port]
			li := 0
			for bit := 0; bit < width; bit++ {
				cell := cell0 + bit
				m.consecReads[cell]++
				decayed := m.consecReads[cell] >= 3
				exp := -(op.Data >> uint(bit) & 1)
				for p := 0; p < np; p++ {
					raw := planes[s]
					v := raw
					var sof uint64
					if rp != nil {
						o := s * rStride
						v = (raw &^ rp[o+rSA0]) | rp[o+rSA1]
						if decayed {
							v = (v &^ rp[o+rRDF0]) | rp[o+rRDF1]
						}
						v |= rp[o+rIRF0] &^ raw
						v &^= rp[o+rIRF1] & raw
						set := rp[o+rDRDF0] &^ raw
						clr := rp[o+rDRDF1] & raw
						if set|clr != 0 {
							planes[s] = (raw | set) &^ clr
						}
						sof = rp[o+rSOF]
					}
					latch := sl[li]
					fail[p] |= ((v &^ sof) | (latch & sof)) ^ exp
					sl[li] = (latch & sof) | (v &^ sof)
					s++
					li++
				}
			}
			if fail[0]&1 != 0 {
				return goodLaneErr(op)
			}
			if replayDone(fail, occ, np) {
				return nil
			}
		default: // UOpPause
			for _, e := range m.drf {
				i := e.cell*np + e.plane
				if e.value {
					planes[i] |= e.lane
				} else {
					planes[i] &^= e.lane
				}
			}
		}
	}
	return nil
}

// replayCoupling extends replayMask with write-transition triggers
// (CFin/CFid) and CFst dirty tracking + re-application. Reads stay on
// the mask fast path: coupling batches carry no read-path state.
//
//mbist:hotpath
func (m *LaneInjected) replayCoupling(ops []UOp, fail, occ *[MaxPlanes]uint64) error {
	np, width, planes := m.np, m.width, m.planes
	wb, rb := m.wmask.byPort, m.rmask.byPort
	hasCFst := m.hasCFst
	for oi := range ops {
		op := &ops[oi]
		switch op.Kind {
		case UOpWrite:
			cell0 := int(op.Cell)
			s := cell0 * np
			var wp []uint64
			if wb != nil {
				wp = wb[op.Port]
			}
			for bit := 0; bit < width; bit++ {
				cell := cell0 + bit
				v := -(op.Data >> uint(bit) & 1)
				trig := m.cfTrig[cell]
				for p := 0; p < np; p++ {
					old := planes[s]
					eff := v
					if wp != nil {
						o := s * wStride
						eff = (v &^ wp[o+wSA0]) | wp[o+wSA1]
						eff &^= wp[o+wTFUp] &^ old
						eff |= wp[o+wTFDown] & old
						eff |= wp[o+wWDF0] &^ old &^ v
						eff &^= wp[o+wWDF1] & old & v
					}
					planes[s] = eff
					if changed := old ^ eff; changed != 0 {
						if hasCFst {
							m.markDirty(cell)
						}
						if len(trig) > 0 {
							rose := changed & eff
							fell := changed & old
							for ei := range trig {
								e := &trig[ei]
								if e.plane != p {
									continue
								}
								var fire uint64
								if e.aggVal {
									fire = rose & e.lane
								} else {
									fire = fell & e.lane
								}
								if fire == 0 {
									continue
								}
								vi := e.victim*np + p
								if e.kind == CFin {
									planes[vi] ^= fire
								} else if e.value {
									planes[vi] |= fire
								} else {
									planes[vi] &^= fire
								}
								if hasCFst {
									m.markDirty(e.victim)
								}
							}
						}
					}
					s++
				}
			}
			m.applyStateCFs()
		case UOpRead:
			s := int(op.Cell) * np
			var rp []uint64
			if rb != nil {
				rp = rb[op.Port]
			}
			for bit := 0; bit < width; bit++ {
				exp := -(op.Data >> uint(bit) & 1)
				if rp == nil {
					for p := 0; p < np; p++ {
						fail[p] |= planes[s] ^ exp
						s++
					}
					continue
				}
				for p := 0; p < np; p++ {
					raw := planes[s]
					o := s * rStride
					v := (raw &^ rp[o+rSA0]) | rp[o+rSA1]
					v |= rp[o+rIRF0] &^ raw
					v &^= rp[o+rIRF1] & raw
					fail[p] |= v ^ exp
					s++
				}
			}
			if fail[0]&1 != 0 {
				return goodLaneErr(op)
			}
			if replayDone(fail, occ, np) {
				return nil
			}
		default: // UOpPause
			for _, e := range m.drf {
				i := e.cell*np + e.plane
				if e.value {
					planes[i] |= e.lane
				} else {
					planes[i] &^= e.lane
				}
				if hasCFst {
					m.markDirty(e.cell)
				}
			}
			m.applyStateCFs()
		}
	}
	return nil
}

// replayAF is the decoder-fault-only kernel: accesses apply AFNone
// drops and AFMap/AFMulti redirections over raw cells, with no mask,
// trigger, latch or counter machinery (an AF-only batch has none).
//
//mbist:hotpath
func (m *LaneInjected) replayAF(ops []UOp, fail, occ *[MaxPlanes]uint64) error {
	np, width, planes := m.np, m.width, m.planes
	rv := m.readVals
	for oi := range ops {
		op := &ops[oi]
		switch op.Kind {
		case UOpWrite:
			port, addr := int(op.Port), int(op.Addr)
			redir := m.afRedir[addr]
			m.defaultDecode(port, addr, redir)
			s := int(op.Cell) * np
			for bit := 0; bit < width; bit++ {
				v := -(op.Data >> uint(bit) & 1)
				for p := 0; p < np; p++ {
					lm := m.defLanes[p]
					planes[s] = (planes[s] &^ lm) | (v & lm)
					s++
				}
				for _, e := range redir {
					if !e.appliesTo(port) {
						continue
					}
					i := (e.aggAddr*width+bit)*np + e.plane
					planes[i] = (planes[i] &^ e.lane) | (v & e.lane)
				}
			}
		case UOpRead:
			port, addr := int(op.Port), int(op.Addr)
			redir := m.afRedir[addr]
			m.defaultDecode(port, addr, redir)
			s := int(op.Cell) * np
			for bit := 0; bit < width; bit++ {
				exp := -(op.Data >> uint(bit) & 1)
				for p := 0; p < np; p++ {
					rv[p] = planes[s] &^ m.afNone.at(port, addr*np+p)
					s++
				}
				for _, e := range redir {
					if !e.appliesTo(port) {
						continue
					}
					av := planes[(e.aggAddr*width+bit)*np+e.plane]
					if e.multi {
						rv[e.plane] &^= e.lane &^ av
					} else {
						rv[e.plane] = (rv[e.plane] &^ e.lane) | (av & e.lane)
					}
				}
				for p := 0; p < np; p++ {
					fail[p] |= rv[p] ^ exp
				}
			}
			if fail[0]&1 != 0 {
				return goodLaneErr(op)
			}
			if replayDone(fail, occ, np) {
				return nil
			}
		}
	}
	return nil
}

// replayGeneral is the catch-all: full Write/ReadLanes/Pause semantics
// driven by the µop buffer, with the read fused against the expected
// values (no caller-side result buffer). It differs from the
// interpreted path only in skipping per-op access validation, which
// NewCompiledStream already proved.
//
//mbist:hotpath
func (m *LaneInjected) replayGeneral(ops []UOp, fail, occ *[MaxPlanes]uint64) error {
	np, width := m.np, m.width
	for oi := range ops {
		op := &ops[oi]
		switch op.Kind {
		case UOpWrite:
			m.Write(int(op.Port), int(op.Addr), op.Data)
		case UOpRead:
			m.replayReads = m.ReadLanes(int(op.Port), int(op.Addr), m.replayReads[:0])
			s := 0
			for bit := 0; bit < width; bit++ {
				exp := -(op.Data >> uint(bit) & 1)
				for p := 0; p < np; p++ {
					fail[p] |= m.replayReads[s] ^ exp
					s++
				}
			}
			if fail[0]&1 != 0 {
				return goodLaneErr(op)
			}
			if replayDone(fail, occ, np) {
				return nil
			}
		default:
			m.Pause()
		}
	}
	return nil
}
