package faults

import (
	"math/rand"
	"testing"
)

// testStream builds a deterministic pseudo-march µop sequence for one
// geometry: random writes, reads and pauses with the expected read
// values computed on a fault-free scalar machine. Long read runs occur
// often enough to decay RDF lanes and exercise sense-latch state.
func testStream(t *testing.T, size, width, ports int, seed int64, steps int) *CompiledStream {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	good := NewInjected(size, width, ports)
	mask := uint64(1)<<uint(width) - 1
	ops := make([]UOp, 0, steps)
	for i := 0; i < steps; i++ {
		port := rng.Intn(ports)
		addr := rng.Intn(size)
		switch r := rng.Float64(); {
		case r < 0.40:
			data := rng.Uint64() & mask
			good.Write(port, addr, data)
			ops = append(ops, UOp{
				Kind: UOpWrite, Port: uint8(port), Addr: int32(addr),
				Cell: int32(addr * width), Data: data,
			})
		case r < 0.92:
			ops = append(ops, UOp{
				Kind: UOpRead, Port: uint8(port), Addr: int32(addr),
				Cell: int32(addr * width), Data: good.Read(port, addr),
			})
		default:
			good.Pause()
			ops = append(ops, UOp{Kind: UOpPause})
		}
	}
	cs, err := NewCompiledStream(size, width, ports, ops)
	if err != nil {
		t.Fatalf("compile test stream: %v", err)
	}
	return cs
}

// interpretedReplay drives the same µops through the public
// Write/ReadLanes/Pause path — the reference the kernels must match.
func interpretedReplay(m *LaneInjected, cs *CompiledStream) ([MaxPlanes]uint64, bool) {
	var fail [MaxPlanes]uint64
	np, width := m.Planes(), m.Width()
	var reads []uint64
	for i := range cs.ops {
		op := &cs.ops[i]
		switch op.Kind {
		case UOpWrite:
			m.Write(int(op.Port), int(op.Addr), op.Data)
		case UOpRead:
			reads = m.ReadLanes(int(op.Port), int(op.Addr), reads[:0])
			s := 0
			for bit := 0; bit < width; bit++ {
				exp := -(op.Data >> uint(bit) & 1)
				for p := 0; p < np; p++ {
					fail[p] |= reads[s] ^ exp
					s++
				}
			}
			if fail[0]&1 != 0 {
				return fail, false
			}
		default:
			m.Pause()
		}
	}
	return fail, true
}

// kernelClass partitions fault kinds the way the coverage layer packs
// batches: each class admits one specialized kernel.
func kernelClass(k Kind) (int, Kernel) {
	switch k {
	case SOF, RDF, DRDF:
		return 1, KernelLatch
	case CFin, CFid, CFst:
		return 2, KernelCoupling
	case AFNone, AFMap, AFMulti:
		return 3, KernelAF
	default: // SA, TF, WDF, IRF, DRF
		return 0, KernelMask
	}
}

// TestReplayKernelsMatchInterpreted is the core compiled-replay
// equivalence property: for every mechanism class (each selecting its
// specialized kernel) and for mixed batches (the general catch-all),
// Replay must produce the same per-lane verdicts as the interpreted
// Write/ReadLanes path, across geometries and plane counts.
func TestReplayKernelsMatchInterpreted(t *testing.T) {
	geometries := []struct {
		size, width, ports int
	}{
		{8, 1, 1},
		{4, 2, 2},
	}
	for _, g := range geometries {
		universe := Universe(g.size, g.width, UniverseOpts{Ports: g.ports})
		cs := testStream(t, g.size, g.width, g.ports, int64(g.size*100+g.ports), 300)

		// Per-class batches select their specialized kernel; a whole
		// universe chunk mixes classes and must fall back to general.
		byClass := make(map[int][]Fault)
		wantKernel := make(map[int]Kernel)
		for _, f := range universe {
			c, k := kernelClass(f.Kind)
			byClass[c] = append(byClass[c], f)
			wantKernel[c] = k
		}
		byClass[4] = universe
		wantKernel[4] = KernelGeneral

		for _, np := range []int{1, 2, 4} {
			limit := BatchLimit(np)
			for class, pool := range byClass {
				for start := 0; start < len(pool); start += limit {
					end := min(start+limit, len(pool))
					batch := pool[start:end]

					arena := NewLaneInjectedPlanes(g.size, g.width, g.ports, np, batch)
					if got := arena.Kernel(); got != wantKernel[class] && class != 4 {
						t.Fatalf("class %d batch: kernel %v, want %v (caps %b)",
							class, got, wantKernel[class], arena.Caps())
					}
					var fail [MaxPlanes]uint64
					if _, err := arena.Replay(cs, &fail); err != nil {
						t.Fatalf("class %d np=%d replay: %v", class, np, err)
					}

					ref := NewLaneInjectedPlanes(g.size, g.width, g.ports, np, batch)
					want, ok := interpretedReplay(ref, cs)
					if !ok {
						t.Fatalf("class %d np=%d: interpreted replay lost the good machine", class, np)
					}

					for i := range batch {
						l := i + 1
						got := fail[l>>6]>>uint(l&63)&1 == 1
						exp := want[l>>6]>>uint(l&63)&1 == 1
						if got != exp {
							t.Fatalf("%dx%d/%dp np=%d class %d: lane %d (%s) detected=%v, interpreted %v",
								g.size, g.width, g.ports, np, class, l, batch[i], got, exp)
						}
					}
				}
			}
		}
	}
}

// TestReplaySameBatchReset pins the re-injection skip: replaying the
// identical batch slice on the same arena (the cached-partition hot
// path) must give verdicts identical to a fresh arena, including when
// the active plane count shrinks below the arena's capacity.
func TestReplaySameBatchReset(t *testing.T) {
	const size, width, ports = 8, 1, 1
	universe := Universe(size, width, UniverseOpts{})
	cs := testStream(t, size, width, ports, 42, 300)

	arena := NewLaneInjectedPlanes(size, width, ports, MaxPlanes, nil)
	if arena.PlaneCap() != MaxPlanes {
		t.Fatalf("PlaneCap = %d, want %d", arena.PlaneCap(), MaxPlanes)
	}
	for _, np := range []int{1, 2, MaxPlanes} {
		batch := universe[:min(BatchLimit(np), len(universe))]
		var first, second [MaxPlanes]uint64
		arena.ResetPlanes(batch, np)
		if arena.Planes() != np {
			t.Fatalf("Planes = %d, want %d", arena.Planes(), np)
		}
		if !arena.SameBatch(batch) {
			t.Fatal("SameBatch false for the armed batch")
		}
		if _, err := arena.Replay(cs, &first); err != nil {
			t.Fatalf("np=%d first replay: %v", np, err)
		}
		// Second pass takes the same-batch fast path.
		arena.ResetPlanes(batch, np)
		if _, err := arena.Replay(cs, &second); err != nil {
			t.Fatalf("np=%d second replay: %v", np, err)
		}
		if first != second {
			t.Fatalf("np=%d: same-batch reset changed verdicts\nfirst  %x\nsecond %x", np, first, second)
		}

		fresh := NewLaneInjectedPlanes(size, width, ports, np, batch)
		var want [MaxPlanes]uint64
		if _, err := fresh.Replay(cs, &want); err != nil {
			t.Fatalf("np=%d fresh replay: %v", np, err)
		}
		for p := 0; p < np; p++ {
			occ := fresh.FaultMaskPlane(p)
			if first[p]&occ != want[p]&occ {
				t.Fatalf("np=%d plane %d: arena %x, fresh %x", np, p, first[p]&occ, want[p]&occ)
			}
		}
	}
}

// TestCompiledStreamValidation pins compile-time validation: the
// kernels skip per-op access checks, so NewCompiledStream must reject
// every malformed op.
func TestCompiledStreamValidation(t *testing.T) {
	valid := UOp{Kind: UOpWrite, Port: 0, Addr: 2, Cell: 4, Data: 3}
	cases := []struct {
		name string
		op   UOp
	}{
		{"bad opcode", UOp{Kind: 9}},
		{"port out of range", UOp{Kind: UOpRead, Port: 2, Addr: 0, Cell: 0}},
		{"addr out of range", UOp{Kind: UOpWrite, Addr: 8, Cell: 16}},
		{"negative addr", UOp{Kind: UOpWrite, Addr: -1, Cell: -2}},
		{"cell mismatch", UOp{Kind: UOpWrite, Addr: 1, Cell: 3}},
		{"data past width", UOp{Kind: UOpWrite, Addr: 1, Cell: 2, Data: 4}},
	}
	if _, err := NewCompiledStream(8, 2, 2, []UOp{valid, {Kind: UOpPause}}); err != nil {
		t.Fatalf("valid stream rejected: %v", err)
	}
	for _, c := range cases {
		if _, err := NewCompiledStream(8, 2, 2, []UOp{valid, c.op}); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	if _, err := NewCompiledStream(0, 1, 1, nil); err == nil {
		t.Error("bad geometry accepted")
	}

	// Geometry mismatch at replay time.
	cs, err := NewCompiledStream(8, 1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := NewLaneInjected(4, 1, 1, nil)
	var fail [MaxPlanes]uint64
	if _, err := m.Replay(cs, &fail); err == nil {
		t.Error("geometry mismatch accepted at replay")
	}
}
