package faults

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/memory"
)

// TestFaultFreeEquivalenceProperty: with no faults injected, any
// sequence of operations on the injected memory behaves exactly like
// the plain SRAM.
func TestFaultFreeEquivalenceProperty(t *testing.T) {
	f := func(seed int64, opsRaw []uint32) bool {
		const size, width, ports = 16, 4, 2
		inj := NewInjected(size, width, ports)
		ref := memory.NewSRAM(size, width, ports)
		rng := rand.New(rand.NewSource(seed))
		for _, raw := range opsRaw {
			port := int(raw>>28) % ports
			addr := int(raw>>20) % size
			data := uint64(raw & 0xF)
			switch raw % 3 {
			case 0:
				inj.Write(port, addr, data)
				ref.Write(port, addr, data)
			case 1:
				if inj.Read(port, addr) != ref.Read(port, addr) {
					return false
				}
			case 2:
				inj.Pause()
				ref.Pause()
			}
			_ = rng
		}
		return memory.Equal(inj, ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestSingleCellFaultLocalityProperty: a single-cell fault never
// perturbs any other cell, whatever the operation sequence.
func TestSingleCellFaultLocalityProperty(t *testing.T) {
	kinds := []Kind{SA, TF, SOF, DRF, RDF, WDF, IRF, DRDF}
	f := func(seed int64, kindIdx uint8, victim uint8, value bool) bool {
		const size = 16
		fault := Fault{
			Kind:  kinds[int(kindIdx)%len(kinds)],
			Cell:  int(victim) % size,
			Value: value,
			Port:  AnyPort,
		}
		inj := NewInjected(size, 1, 1, fault)
		ref := memory.NewSRAM(size, 1, 1)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 200; i++ {
			addr := rng.Intn(size)
			switch rng.Intn(3) {
			case 0:
				d := uint64(rng.Intn(2))
				inj.Write(0, addr, d)
				ref.Write(0, addr, d)
			case 1:
				got := inj.Read(0, addr)
				want := ref.Read(0, addr)
				if addr != fault.Cell && got != want {
					return false // a non-victim cell misbehaved
				}
			case 2:
				inj.Pause()
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestCouplingOnlyTouchesVictimProperty: a coupling fault perturbs at
// most the victim cell; the aggressor itself and bystanders always
// behave nominally.
func TestCouplingOnlyTouchesVictimProperty(t *testing.T) {
	kinds := []Kind{CFin, CFid, CFst}
	f := func(seed int64, kindIdx, agg, vic uint8, aggVal, value bool) bool {
		const size = 16
		a := int(agg) % size
		v := int(vic) % size
		if a == v {
			return true
		}
		fault := Fault{
			Kind: kinds[int(kindIdx)%len(kinds)], Aggressor: a, Cell: v,
			AggVal: aggVal, Value: value, Port: AnyPort,
		}
		inj := NewInjected(size, 1, 1, fault)
		ref := memory.NewSRAM(size, 1, 1)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 200; i++ {
			addr := rng.Intn(size)
			if rng.Intn(2) == 0 {
				d := uint64(rng.Intn(2))
				inj.Write(0, addr, d)
				ref.Write(0, addr, d)
			} else if addr != v {
				if inj.Read(0, addr) != ref.Read(0, addr) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
