// Package faults implements the classical functional fault models of
// semiconductor memories (van de Goor, "Testing Semiconductor Memories")
// and a fault-injecting memory that the BIST architectures are evaluated
// against: stuck-at, transition, coupling (inversion, idempotent, state),
// stuck-open, data-retention, read-disturb (disconnected pull-up/down
// devices) and address-decoder faults, with optional port-specific
// visibility for multiport memories.
//
// # Panic contract
//
// Validate is the error-returning check for a geometry plus fault
// list; callers holding unvalidated user input (the mbist facade,
// mbistsim's -fault flags) run it first and surface the error. The
// NewInjected/NewLaneInjected constructors and the per-operation
// bounds checks panic on the same conditions: they run in the grading
// hot loop — one constructor call per fault (or per 63-fault batch) of
// a universe enumerated by this package, millions per matrix sweep —
// so a violation there is a programming error in fault enumeration or
// stream replay, not an input error. The grading pipeline's worker
// isolation (internal/resilience.Capture) converts such panics into
// quarantined verdicts rather than crashed sweeps.
package faults

import "fmt"

// Validate checks a geometry and fault list the way the injecting
// constructors do, returning the first problem as an error instead of
// panicking: geometry bounds, victim/aggressor cell ranges, aggressor
// distinctness for coupling faults, decoder-fault address ranges and
// port visibility. A nil return guarantees NewInjected (and, for lists
// of at most MaxLanes faults, NewLaneInjected) will not panic on the
// same input.
func Validate(size, width, ports int, faultList ...Fault) error {
	if size <= 0 || width < 1 || width > 64 || ports <= 0 {
		return fmt.Errorf("faults: bad geometry %dx%d, %d ports", size, width, ports)
	}
	cells := size * width
	for i, f := range faultList {
		if f.Port != AnyPort && (f.Port < 0 || f.Port >= ports) {
			return fmt.Errorf("faults: fault %d (%v): port %d out of [0,%d)", i, f, f.Port, ports)
		}
		switch f.Kind {
		case SA, TF, SOF, DRF, RDF, WDF, IRF, DRDF:
			if f.Cell < 0 || f.Cell >= cells {
				return fmt.Errorf("faults: fault %d (%v): victim cell %d out of [0,%d)", i, f, f.Cell, cells)
			}
		case CFin, CFid, CFst:
			if f.Cell < 0 || f.Cell >= cells || f.Aggressor < 0 || f.Aggressor >= cells {
				return fmt.Errorf("faults: fault %d (%v): coupling cells (%d,%d) out of [0,%d)",
					i, f, f.Aggressor, f.Cell, cells)
			}
			if f.Cell == f.Aggressor {
				return fmt.Errorf("faults: fault %d (%v): coupling victim == aggressor", i, f)
			}
		case AFNone, AFMap, AFMulti:
			if f.Addr < 0 || f.Addr >= size {
				return fmt.Errorf("faults: fault %d (%v): address %d out of [0,%d)", i, f, f.Addr, size)
			}
			if (f.Kind == AFMap || f.Kind == AFMulti) && (f.AggAddr < 0 || f.AggAddr >= size) {
				return fmt.Errorf("faults: fault %d (%v): aggressor address %d out of [0,%d)", i, f, f.AggAddr, size)
			}
		default:
			return fmt.Errorf("faults: fault %d: unknown kind %d", i, int(f.Kind))
		}
	}
	return nil
}

// Kind classifies a functional fault.
type Kind uint8

const (
	// SA is a stuck-at fault: the cell always holds Value.
	SA Kind = iota
	// TF is a transition fault: the cell cannot transition *to* Value
	// (TF with Value=1 is an "up" transition fault, ⟨↑/0⟩).
	TF
	// CFin is an inversion coupling fault: an aggressor transition
	// (rising when AggVal, falling otherwise) inverts the victim.
	CFin
	// CFid is an idempotent coupling fault: an aggressor transition
	// (direction AggVal) forces the victim to Value.
	CFid
	// CFst is a state coupling fault: while the aggressor holds AggVal,
	// the victim is forced to Value.
	CFst
	// SOF is a stuck-open fault: reading the cell returns the sense
	// amplifier's previous value instead of the cell content.
	SOF
	// DRF is a data-retention fault: after a pause (delay phase) the
	// cell leaks to Value.
	DRF
	// RDF is a read-disturb fault modelling a disconnected pull-up or
	// pull-down device: the first two consecutive reads of the cell
	// return the stored value, but the third and subsequent consecutive
	// reads return Value. A write restores normal behaviour. Detecting
	// it requires march elements with three reads per cell (the March
	// C++/A++ enhancement of the paper).
	RDF
	// AFNone is an address-decoder fault: Addr selects no cell; writes
	// are lost and reads return all-zeros.
	AFNone
	// AFMap is an address-decoder fault: Addr selects the cells of
	// AggAddr instead of its own (its own cells become unreachable).
	AFMap
	// AFMulti is an address-decoder fault: Addr selects both its own
	// cells and those of AggAddr; reads see the wired-AND of the two.
	AFMulti
	// WDF is a write-disturb fault: a non-transition write of Value
	// (writing Value into a cell already holding it) flips the cell.
	// Only march tests with non-transition writes (e.g. March SS)
	// sensitise it.
	WDF
	// IRF is an incorrect-read fault: reading the cell while it holds
	// Value returns the complement; the cell content is unchanged.
	IRF
	// DRDF is a deceptive read-destructive fault: reading the cell
	// while it holds Value returns the correct value but flips the
	// cell. Detection needs back-to-back reads (March SS, the "++"
	// triple-read variants).
	DRDF
	numKinds
)

// NumKinds is the number of defined fault kinds — the bound for flat
// per-kind tally arrays.
const NumKinds = int(numKinds)

var kindNames = [numKinds]string{
	"SA", "TF", "CFin", "CFid", "CFst", "SOF", "DRF", "RDF",
	"AFnone", "AFmap", "AFmulti", "WDF", "IRF", "DRDF",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// AnyPort marks a fault visible through every port.
const AnyPort = -1

// Fault is one injected functional fault. Cell indices address single
// bits: cell = address*width + bit.
type Fault struct {
	Kind Kind

	// Cell is the victim cell for cell faults, unused for AF kinds.
	Cell int
	// Aggressor is the aggressor cell for coupling faults.
	Aggressor int

	// Addr and AggAddr are word addresses for the AF kinds.
	Addr    int
	AggAddr int

	// Value is the forced/coupled/leak value, per Kind documentation.
	Value bool
	// AggVal is the aggressor condition: transition direction for
	// CFin/CFid (true = rising), aggressor state for CFst.
	AggVal bool

	// Port restricts fault visibility to one port (AnyPort = all).
	// Port-specific faults model per-port read-circuit defects in
	// multiport memories; they are why a BIST unit must repeat the test
	// algorithm on every port.
	Port int
}

// String renders the fault in van-de-Goor-like notation.
func (f Fault) String() string {
	b01 := func(v bool) string {
		if v {
			return "1"
		}
		return "0"
	}
	arrow := func(v bool) string {
		if v {
			return "↑"
		}
		return "↓"
	}
	port := ""
	if f.Port != AnyPort {
		port = fmt.Sprintf("@p%d", f.Port)
	}
	switch f.Kind {
	case SA:
		return fmt.Sprintf("SA%s(c%d)%s", b01(f.Value), f.Cell, port)
	case TF:
		return fmt.Sprintf("TF<%s>(c%d)%s", arrow(f.Value), f.Cell, port)
	case CFin:
		return fmt.Sprintf("CFin<%s;↕>(a%d,v%d)%s", arrow(f.AggVal), f.Aggressor, f.Cell, port)
	case CFid:
		return fmt.Sprintf("CFid<%s;%s>(a%d,v%d)%s", arrow(f.AggVal), b01(f.Value), f.Aggressor, f.Cell, port)
	case CFst:
		return fmt.Sprintf("CFst<%s;%s>(a%d,v%d)%s", b01(f.AggVal), b01(f.Value), f.Aggressor, f.Cell, port)
	case SOF:
		return fmt.Sprintf("SOF(c%d)%s", f.Cell, port)
	case DRF:
		return fmt.Sprintf("DRF%s(c%d)%s", b01(f.Value), f.Cell, port)
	case RDF:
		return fmt.Sprintf("RDF%s(c%d)%s", b01(f.Value), f.Cell, port)
	case WDF:
		return fmt.Sprintf("WDF<%sw%s>(c%d)%s", b01(f.Value), b01(f.Value), f.Cell, port)
	case IRF:
		return fmt.Sprintf("IRF<r%s>(c%d)%s", b01(f.Value), f.Cell, port)
	case DRDF:
		return fmt.Sprintf("DRDF<r%s>(c%d)%s", b01(f.Value), f.Cell, port)
	case AFNone:
		return fmt.Sprintf("AFnone(a%d)%s", f.Addr, port)
	case AFMap:
		return fmt.Sprintf("AFmap(a%d->a%d)%s", f.Addr, f.AggAddr, port)
	case AFMulti:
		return fmt.Sprintf("AFmulti(a%d+a%d)%s", f.Addr, f.AggAddr, port)
	default:
		return fmt.Sprintf("fault(%d)", int(f.Kind))
	}
}

// appliesTo reports whether the fault is visible through the port.
func (f Fault) appliesTo(port int) bool {
	return f.Port == AnyPort || f.Port == port
}
