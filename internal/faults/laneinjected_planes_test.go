package faults

import (
	"math/rand"
	"testing"
)

// laneWordPlanes extracts logical lane L's word from the per-bit result
// planes a multi-plane ReadLanes returned (layout dst[bit*np+p], lane L
// = plane L/64, bit L%64).
func laneWordPlanes(dst []uint64, np, width, lane int) uint64 {
	p, b := lane>>6, uint(lane&63)
	var w uint64
	for bit := 0; bit < width; bit++ {
		w |= (dst[bit*np+p] >> b & 1) << uint(bit)
	}
	return w
}

// TestLaneInjectedPlanesMatchesScalar extends the lane-equivalence
// property to the multi-plane layouts: at 2, 4 and 8 planes (128-512
// logical lanes) a random operation sequence must leave every logical
// lane bit-identical to a scalar Injected carrying only that lane's
// fault. One LaneInjected is reused across universe batches via Reset,
// so the arena path (zeroed-in-place mask arrays) is covered as well.
func TestLaneInjectedPlanesMatchesScalar(t *testing.T) {
	geometries := []struct {
		size, width, ports int
	}{
		{8, 1, 1},
		{4, 2, 2},
	}
	for _, g := range geometries {
		universe := Universe(g.size, g.width, UniverseOpts{Ports: g.ports})
		for _, np := range []int{2, 4, 8} {
			limit := BatchLimit(np)
			rng := rand.New(rand.NewSource(int64(np*1000 + g.size*10 + g.ports)))
			mask := uint64(1)<<uint(g.width) - 1
			var lanes *LaneInjected
			for start := 0; start < len(universe); start += limit {
				end := start + limit
				if end > len(universe) {
					end = len(universe)
				}
				batch := universe[start:end]
				if lanes == nil {
					lanes = NewLaneInjectedPlanes(g.size, g.width, g.ports, np, batch)
				} else {
					lanes.Reset(batch)
				}
				if lanes.Planes() != np || lanes.Lanes() != len(batch) {
					t.Fatalf("planes/lanes = %d/%d, want %d/%d",
						lanes.Planes(), lanes.Lanes(), np, len(batch))
				}
				scalars := make([]*Injected, len(batch)+1)
				scalars[0] = NewInjected(g.size, g.width, g.ports)
				for i, f := range batch {
					scalars[i+1] = NewInjected(g.size, g.width, g.ports, f)
				}

				var dst []uint64
				for step := 0; step < 250; step++ {
					port := rng.Intn(g.ports)
					addr := rng.Intn(g.size)
					switch r := rng.Float64(); {
					case r < 0.45:
						data := rng.Uint64() & mask
						lanes.Write(port, addr, data)
						for _, s := range scalars {
							s.Write(port, addr, data)
						}
					case r < 0.9:
						dst = lanes.ReadLanes(port, addr, dst[:0])
						for k, s := range scalars {
							want := s.Read(port, addr)
							if got := laneWordPlanes(dst, np, g.width, k); got != want {
								fault := "none (good machine)"
								if k > 0 {
									fault = batch[k-1].String()
								}
								t.Fatalf("%dx%d/%dp np=%d step %d: read(p%d,a%d) lane %d = %0*b, scalar %0*b (fault %s)",
									g.size, g.width, g.ports, np, step, port, addr, k,
									g.width, got, g.width, want, fault)
							}
						}
					default:
						lanes.Pause()
						for _, s := range scalars {
							s.Pause()
						}
					}
				}

				for cell := 0; cell < g.size*g.width; cell++ {
					for k, s := range scalars {
						if lanes.LaneCellState(k, cell) != s.CellState(cell) {
							fault := "none (good machine)"
							if k > 0 {
								fault = batch[k-1].String()
							}
							t.Fatalf("%dx%d/%dp np=%d: final cell %d lane %d = %v, scalar %v (fault %s)",
								g.size, g.width, g.ports, cell, np, k,
								lanes.LaneCellState(k, cell), s.CellState(cell), fault)
						}
					}
				}
			}
		}
	}
}

// TestLaneInjectedFaultMaskPlane pins the per-plane occupied-lane mask:
// logical lanes fill plane 0 bits 1..63 first, then whole planes.
func TestLaneInjectedFaultMaskPlane(t *testing.T) {
	universe := Universe(16, 1, UniverseOpts{})
	if len(universe) < 130 {
		t.Fatalf("universe too small for the test: %d faults", len(universe))
	}

	// 70 faults on 2 planes: plane 0 full (bits 1..63), plane 1 carries
	// lanes 64..70 (bits 0..6).
	m := NewLaneInjectedPlanes(16, 1, 1, 2, universe[:70])
	if got, want := m.FaultMaskPlane(0), ^uint64(0)&^1; got != want {
		t.Errorf("70 faults plane 0 mask = %x, want %x", got, want)
	}
	if got, want := m.FaultMaskPlane(1), uint64(1)<<7-1; got != want {
		t.Errorf("70 faults plane 1 mask = %x, want %x", got, want)
	}
	if got := m.FaultMask(); got != m.FaultMaskPlane(0) {
		t.Errorf("FaultMask() = %x, want plane-0 mask %x", got, m.FaultMaskPlane(0))
	}

	// 127 faults saturate both planes of a 2-plane memory.
	m = NewLaneInjectedPlanes(16, 1, 1, 2, universe[:BatchLimit(2)])
	if got, want := m.FaultMaskPlane(1), ^uint64(0); got != want {
		t.Errorf("full plane 1 mask = %x, want %x", got, want)
	}

	// 10 faults on 4 planes: only plane 0 is occupied.
	m = NewLaneInjectedPlanes(16, 1, 1, 4, universe[:10])
	if got, want := m.FaultMaskPlane(0), (uint64(1)<<11-1)&^1; got != want {
		t.Errorf("10 faults plane 0 mask = %x, want %x", got, want)
	}
	for p := 1; p < 4; p++ {
		if got := m.FaultMaskPlane(p); got != 0 {
			t.Errorf("10 faults plane %d mask = %x, want 0", p, got)
		}
	}
}

// TestLaneInjectedPlanesPanics pins the multi-plane constructor
// validation: plane counts outside [1, MaxPlanes] and batches past
// BatchLimit are rejected, for both construction and Reset.
func TestLaneInjectedPlanesPanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	universe := Universe(64, 1, UniverseOpts{})
	expectPanic("zero planes", func() { NewLaneInjectedPlanes(4, 1, 1, 0, nil) })
	expectPanic("too many planes", func() { NewLaneInjectedPlanes(4, 1, 1, MaxPlanes+1, nil) })
	expectPanic("batch past 2-plane limit", func() {
		NewLaneInjectedPlanes(64, 1, 1, 2, universe[:BatchLimit(2)+1])
	})
	expectPanic("Reset past limit", func() {
		m := NewLaneInjectedPlanes(64, 1, 1, 2, universe[:10])
		m.Reset(universe[:BatchLimit(2)+1])
	})
}
