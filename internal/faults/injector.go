package faults

import (
	"fmt"

	"repro/internal/memory"
)

// Injected is a memory.Memory with functional faults injected. It keeps
// its own bit-level cell array so that word-oriented and multiport
// geometries share one fault semantics.
type Injected struct {
	size  int
	width int
	ports int

	cells []bool // size*width bits

	byVictim  map[int][]Fault // SA/TF/SOF/DRF/RDF indexed by victim cell
	byAgg     map[int][]Fault // CFin/CFid indexed by aggressor cell
	stateCFs  []Fault         // CFst faults, re-applied after every operation
	byAddr    map[int][]Fault // AF kinds indexed by faulty address
	allFaults []Fault

	senseLatch  [][]bool    // per port, per bit lane: previous sensed value
	consecReads map[int]int // victim cell -> consecutive read count
}

// NewInjected returns a memory of the given geometry with the faults
// injected. All cells start at zero.
func NewInjected(size, width, ports int, faultList ...Fault) *Injected {
	if size <= 0 || width < 1 || width > 64 || ports <= 0 {
		panic(fmt.Sprintf("faults: bad geometry %dx%d, %d ports", size, width, ports))
	}
	m := &Injected{
		size:        size,
		width:       width,
		ports:       ports,
		cells:       make([]bool, size*width),
		byVictim:    make(map[int][]Fault),
		byAgg:       make(map[int][]Fault),
		byAddr:      make(map[int][]Fault),
		consecReads: make(map[int]int),
	}
	m.senseLatch = make([][]bool, ports)
	for p := range m.senseLatch {
		m.senseLatch[p] = make([]bool, width)
	}
	for _, f := range faultList {
		m.inject(f)
	}
	return m
}

func (m *Injected) inject(f Fault) {
	switch f.Kind {
	case SA, TF, SOF, DRF, RDF, WDF, IRF, DRDF:
		if f.Cell < 0 || f.Cell >= len(m.cells) {
			panic(fmt.Sprintf("faults: victim cell %d out of range", f.Cell))
		}
		m.byVictim[f.Cell] = append(m.byVictim[f.Cell], f)
	case CFin, CFid:
		if f.Cell < 0 || f.Cell >= len(m.cells) || f.Aggressor < 0 || f.Aggressor >= len(m.cells) {
			panic("faults: coupling fault cell out of range")
		}
		if f.Cell == f.Aggressor {
			panic("faults: coupling fault victim == aggressor")
		}
		m.byAgg[f.Aggressor] = append(m.byAgg[f.Aggressor], f)
	case CFst:
		if f.Cell == f.Aggressor {
			panic("faults: coupling fault victim == aggressor")
		}
		m.stateCFs = append(m.stateCFs, f)
	case AFNone, AFMap, AFMulti:
		if f.Addr < 0 || f.Addr >= m.size {
			panic("faults: AF address out of range")
		}
		m.byAddr[f.Addr] = append(m.byAddr[f.Addr], f)
	default:
		panic("faults: unknown fault kind")
	}
	m.allFaults = append(m.allFaults, f)
}

// Faults returns the injected fault list.
func (m *Injected) Faults() []Fault { return m.allFaults }

// Size returns the number of word addresses.
func (m *Injected) Size() int { return m.size }

// Width returns the bits per word.
func (m *Injected) Width() int { return m.width }

// Ports returns the number of access ports.
func (m *Injected) Ports() int { return m.ports }

func (m *Injected) checkAccess(port, addr int) {
	if port < 0 || port >= m.ports {
		panic(fmt.Sprintf("faults: port %d out of [0,%d)", port, m.ports))
	}
	if addr < 0 || addr >= m.size {
		panic(fmt.Sprintf("faults: address %d out of [0,%d)", addr, m.size))
	}
}

// decode resolves the word addresses actually selected when addr is
// presented on the given port, applying address-decoder faults.
// An empty slice means no cell is selected.
func (m *Injected) decode(port, addr int) []int {
	for _, f := range m.byAddr[addr] {
		if !f.appliesTo(port) {
			continue
		}
		switch f.Kind {
		case AFNone:
			return nil
		case AFMap:
			return []int{f.AggAddr}
		case AFMulti:
			return []int{addr, f.AggAddr}
		}
	}
	return []int{addr}
}

// Write stores data at addr through port, applying fault behaviour.
func (m *Injected) Write(port, addr int, data uint64) {
	m.checkAccess(port, addr)
	for _, target := range m.decode(port, addr) {
		for bit := 0; bit < m.width; bit++ {
			m.writeCell(port, target*m.width+bit, data>>uint(bit)&1 == 1)
		}
	}
	m.applyStateCFs()
}

func (m *Injected) writeCell(port, cell int, v bool) {
	old := m.cells[cell]
	eff := v
	for _, f := range m.byVictim[cell] {
		if !f.appliesTo(port) {
			continue
		}
		switch f.Kind {
		case SA:
			eff = f.Value
		case TF:
			// The cell cannot transition to f.Value.
			if old != f.Value && eff == f.Value {
				eff = old
			}
		case WDF:
			// A non-transition write of Value flips the cell.
			if old == f.Value && v == f.Value {
				eff = !f.Value
			}
		}
	}
	m.cells[cell] = eff
	delete(m.consecReads, cell) // writes reset read-disturb accumulation

	if old != eff {
		m.triggerCoupling(cell, eff)
	}
}

// triggerCoupling applies CFin/CFid faults whose aggressor just
// transitioned. Victim updates are direct (non-cascading), the standard
// single-fault simulation semantics.
func (m *Injected) triggerCoupling(agg int, rose bool) {
	for _, f := range m.byAgg[agg] {
		if f.AggVal != rose {
			continue
		}
		switch f.Kind {
		case CFin:
			m.cells[f.Cell] = !m.cells[f.Cell]
		case CFid:
			m.cells[f.Cell] = f.Value
		}
	}
}

func (m *Injected) applyStateCFs() {
	for _, f := range m.stateCFs {
		if m.cells[f.Aggressor] == f.AggVal {
			m.cells[f.Cell] = f.Value
		}
	}
}

// Read returns the word at addr through port, applying fault behaviour.
func (m *Injected) Read(port, addr int) uint64 {
	m.checkAccess(port, addr)
	targets := m.decode(port, addr)
	if len(targets) == 0 {
		// No cell selected: the data bus floats; model as all-zeros.
		for bit := 0; bit < m.width; bit++ {
			m.senseLatch[port][bit] = false
		}
		return 0
	}
	var word uint64
	for bit := 0; bit < m.width; bit++ {
		// Wired-AND across multi-selected cells.
		v := true
		for _, target := range targets {
			v = v && m.readCell(port, target*m.width+bit, bit)
		}
		if v {
			word |= 1 << uint(bit)
		}
	}
	return word
}

func (m *Injected) readCell(port, cell, lane int) bool {
	v := m.cells[cell]
	stuckOpen := false
	for _, f := range m.byVictim[cell] {
		if !f.appliesTo(port) {
			continue
		}
		switch f.Kind {
		case SA:
			v = f.Value
		case SOF:
			stuckOpen = true
		case RDF:
			m.consecReads[cell]++
			if m.consecReads[cell] >= 3 {
				v = f.Value
			}
		case IRF:
			if m.cells[cell] == f.Value {
				v = !f.Value
			}
		case DRDF:
			if m.cells[cell] == f.Value {
				v = f.Value // the read itself delivers the right value
				m.cells[cell] = !f.Value
			}
		}
	}
	if stuckOpen {
		// The sense amplifier re-delivers its previous value.
		return m.senseLatch[port][lane]
	}
	m.senseLatch[port][lane] = v
	return v
}

// Pause models a retention delay: every DRF victim leaks to its value.
func (m *Injected) Pause() {
	for cell, fs := range m.byVictim {
		for _, f := range fs {
			if f.Kind == DRF {
				m.cells[cell] = f.Value
			}
		}
	}
	m.applyStateCFs()
}

// CellState returns the raw stored value of a cell (test introspection).
func (m *Injected) CellState(cell int) bool { return m.cells[cell] }

var _ memory.Memory = (*Injected)(nil)
