package faults

import (
	"strings"
	"testing"

	"repro/internal/memory"
)

func TestNoFaultsBehavesLikeSRAM(t *testing.T) {
	inj := NewInjected(32, 4, 2)
	ref := memory.NewSRAM(32, 4, 2)
	ops := []struct {
		port, addr int
		data       uint64
	}{
		{0, 3, 0xA}, {1, 3, 0x5}, {0, 31, 0xF}, {1, 0, 0x1},
	}
	for _, op := range ops {
		inj.Write(op.port, op.addr, op.data)
		ref.Write(op.port, op.addr, op.data)
	}
	inj.Pause()
	ref.Pause()
	if !memory.Equal(inj, ref) {
		t.Error("fault-free injected memory diverged from SRAM")
	}
}

func TestStuckAt(t *testing.T) {
	m := NewInjected(8, 1, 1, Fault{Kind: SA, Cell: 3, Value: true, Port: AnyPort})
	m.Write(0, 3, 0)
	if got := m.Read(0, 3); got != 1 {
		t.Errorf("SA1 cell reads %d after w0", got)
	}
	m2 := NewInjected(8, 1, 1, Fault{Kind: SA, Cell: 3, Value: false, Port: AnyPort})
	m2.Write(0, 3, 1)
	if got := m2.Read(0, 3); got != 0 {
		t.Errorf("SA0 cell reads %d after w1", got)
	}
	// Neighbours unaffected.
	m2.Write(0, 2, 1)
	if got := m2.Read(0, 2); got != 1 {
		t.Errorf("neighbour of SA0 cell corrupted: %d", got)
	}
}

func TestTransitionFault(t *testing.T) {
	// ⟨↑⟩: cell cannot rise.
	m := NewInjected(8, 1, 1, Fault{Kind: TF, Cell: 2, Value: true, Port: AnyPort})
	m.Write(0, 2, 0)
	m.Write(0, 2, 1) // blocked
	if got := m.Read(0, 2); got != 0 {
		t.Errorf("TF-up cell rose: %d", got)
	}
	// ⟨↓⟩: cannot fall. Must first get the cell to 1 — initial state is
	// 0 so the 0->1 write works, then 1->0 is blocked.
	m2 := NewInjected(8, 1, 1, Fault{Kind: TF, Cell: 2, Value: false, Port: AnyPort})
	m2.Write(0, 2, 1)
	if got := m2.Read(0, 2); got != 1 {
		t.Fatalf("TF-down cell failed to rise: %d", got)
	}
	m2.Write(0, 2, 0) // blocked
	if got := m2.Read(0, 2); got != 1 {
		t.Errorf("TF-down cell fell: %d", got)
	}
}

func TestCouplingInversion(t *testing.T) {
	// Rising aggressor (cell 1) inverts victim (cell 4).
	m := NewInjected(8, 1, 1, Fault{Kind: CFin, Aggressor: 1, Cell: 4, AggVal: true, Port: AnyPort})
	m.Write(0, 4, 0)
	m.Write(0, 1, 1) // rise: victim inverts to 1
	if got := m.Read(0, 4); got != 1 {
		t.Errorf("CFin victim = %d after aggressor rise, want 1", got)
	}
	m.Write(0, 1, 0) // falling edge: no effect
	if got := m.Read(0, 4); got != 1 {
		t.Errorf("CFin victim changed on falling aggressor")
	}
	m.Write(0, 1, 1) // rise again: invert back to 0
	if got := m.Read(0, 4); got != 0 {
		t.Errorf("CFin victim = %d after second rise, want 0", got)
	}
	// Re-writing the aggressor to the same value is no transition.
	m.Write(0, 1, 1)
	if got := m.Read(0, 4); got != 0 {
		t.Errorf("CFin triggered without transition")
	}
}

func TestCouplingIdempotent(t *testing.T) {
	// Falling aggressor forces victim to 1.
	m := NewInjected(8, 1, 1, Fault{Kind: CFid, Aggressor: 0, Cell: 7, AggVal: false, Value: true, Port: AnyPort})
	m.Write(0, 0, 1)
	m.Write(0, 7, 0)
	m.Write(0, 0, 0) // fall: victim forced to 1
	if got := m.Read(0, 7); got != 1 {
		t.Errorf("CFid victim = %d, want 1", got)
	}
	m.Write(0, 7, 0)
	m.Write(0, 0, 0) // no transition
	if got := m.Read(0, 7); got != 0 {
		t.Errorf("CFid fired without transition")
	}
}

func TestCouplingState(t *testing.T) {
	// While aggressor (cell 2) holds 1, victim (cell 5) is forced to 0.
	m := NewInjected(8, 1, 1, Fault{Kind: CFst, Aggressor: 2, Cell: 5, AggVal: true, Value: false, Port: AnyPort})
	m.Write(0, 2, 1)
	m.Write(0, 5, 1) // write lands, then state coupling pulls it down
	if got := m.Read(0, 5); got != 0 {
		t.Errorf("CFst victim = %d with aggressor=1, want 0", got)
	}
	m.Write(0, 2, 0)
	m.Write(0, 5, 1)
	if got := m.Read(0, 5); got != 1 {
		t.Errorf("CFst active with aggressor=0")
	}
}

func TestStuckOpen(t *testing.T) {
	m := NewInjected(8, 1, 1, Fault{Kind: SOF, Cell: 3, Port: AnyPort})
	m.Write(0, 3, 1)
	m.Write(0, 2, 0)
	m.Read(0, 2) // sense amp now holds 0
	if got := m.Read(0, 3); got != 0 {
		t.Errorf("SOF read = %d, want sense-amp value 0", got)
	}
	m.Write(0, 4, 1)
	m.Read(0, 4) // sense amp now holds 1
	if got := m.Read(0, 3); got != 1 {
		t.Errorf("SOF read = %d, want sense-amp value 1", got)
	}
}

func TestDataRetention(t *testing.T) {
	m := NewInjected(8, 1, 1, Fault{Kind: DRF, Cell: 6, Value: false, Port: AnyPort})
	m.Write(0, 6, 1)
	if got := m.Read(0, 6); got != 1 {
		t.Fatalf("DRF cell lost data without pause")
	}
	m.Pause()
	if got := m.Read(0, 6); got != 0 {
		t.Errorf("DRF cell holds %d after pause, want 0", got)
	}
}

func TestReadDisturb(t *testing.T) {
	m := NewInjected(8, 1, 1, Fault{Kind: RDF, Cell: 1, Value: true, Port: AnyPort})
	m.Write(0, 1, 0)
	if got := m.Read(0, 1); got != 0 {
		t.Errorf("RDF first read = %d", got)
	}
	if got := m.Read(0, 1); got != 0 {
		t.Errorf("RDF second read = %d", got)
	}
	if got := m.Read(0, 1); got != 1 {
		t.Errorf("RDF third read = %d, want disturbed 1", got)
	}
	// A write resets the accumulation.
	m.Write(0, 1, 0)
	if got := m.Read(0, 1); got != 0 {
		t.Errorf("RDF read after write = %d", got)
	}
}

func TestAddressDecoderNone(t *testing.T) {
	m := NewInjected(8, 1, 1, Fault{Kind: AFNone, Addr: 5, Port: AnyPort})
	m.Write(0, 5, 1)
	if got := m.Read(0, 5); got != 0 {
		t.Errorf("AFnone read = %d, want floating 0", got)
	}
	// Neighbours unaffected.
	m.Write(0, 4, 1)
	if got := m.Read(0, 4); got != 1 {
		t.Errorf("AFnone corrupted neighbour")
	}
}

func TestAddressDecoderMap(t *testing.T) {
	m := NewInjected(8, 1, 1, Fault{Kind: AFMap, Addr: 2, AggAddr: 3, Port: AnyPort})
	m.Write(0, 2, 1) // actually writes cell 3
	if got := m.Read(0, 3); got != 1 {
		t.Errorf("AFmap write did not land on target: %d", got)
	}
	if got := m.Read(0, 2); got != 1 {
		t.Errorf("AFmap read did not come from target: %d", got)
	}
	m.Write(0, 3, 0)
	if got := m.Read(0, 2); got != 0 {
		t.Errorf("AFmap read decoupled from target")
	}
}

func TestAddressDecoderMulti(t *testing.T) {
	m := NewInjected(8, 1, 1, Fault{Kind: AFMulti, Addr: 1, AggAddr: 6, Port: AnyPort})
	m.Write(0, 1, 1) // writes cells 1 and 6
	if got := m.Read(0, 6); got != 1 {
		t.Errorf("AFmulti write missed second cell")
	}
	m.Write(0, 6, 0)
	// Read of addr 1 sees wired-AND of cell1(1) and cell6(0) = 0.
	if got := m.Read(0, 1); got != 0 {
		t.Errorf("AFmulti wired-AND read = %d, want 0", got)
	}
}

func TestPortSpecificFault(t *testing.T) {
	m := NewInjected(8, 1, 2, Fault{Kind: SA, Cell: 4, Value: true, Port: 1})
	m.Write(0, 4, 0)
	if got := m.Read(0, 4); got != 0 {
		t.Errorf("port-1 fault visible on port 0")
	}
	if got := m.Read(1, 4); got != 1 {
		t.Errorf("port-1 SA1 not visible on port 1: %d", got)
	}
}

func TestWordOrientedCellIndexing(t *testing.T) {
	// SA1 on bit 2 of word 3 in a 4-bit memory: cell = 3*4+2.
	m := NewInjected(8, 4, 1, Fault{Kind: SA, Cell: 3*4 + 2, Value: true, Port: AnyPort})
	m.Write(0, 3, 0x0)
	if got := m.Read(0, 3); got != 0b0100 {
		t.Errorf("word read = %04b, want 0100", got)
	}
	m.Write(0, 3, 0xF)
	if got := m.Read(0, 3); got != 0xF {
		t.Errorf("word read = %04b, want 1111", got)
	}
}

func TestInjectPanics(t *testing.T) {
	for _, f := range []Fault{
		{Kind: SA, Cell: 99, Port: AnyPort},
		{Kind: CFin, Aggressor: 2, Cell: 2, Port: AnyPort},
		{Kind: AFNone, Addr: -1, Port: AnyPort},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("inject(%v) did not panic", f)
				}
			}()
			NewInjected(8, 1, 1, f)
		}()
	}
}

func TestFaultStrings(t *testing.T) {
	cases := []struct {
		f    Fault
		want string
	}{
		{Fault{Kind: SA, Cell: 3, Value: true, Port: AnyPort}, "SA1(c3)"},
		{Fault{Kind: TF, Cell: 1, Value: true, Port: AnyPort}, "TF<↑>(c1)"},
		{Fault{Kind: DRF, Cell: 2, Value: false, Port: 1}, "DRF0(c2)@p1"},
		{Fault{Kind: AFMap, Addr: 4, AggAddr: 5, Port: AnyPort}, "AFmap(a4->a5)"},
	}
	for _, c := range cases {
		if got := c.f.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
	// Every kind renders something non-empty and distinct-ish.
	seen := make(map[string]bool)
	for k := Kind(0); k < numKinds; k++ {
		s := Fault{Kind: k, Port: AnyPort}.String()
		if s == "" || strings.HasPrefix(s, "fault(") {
			t.Errorf("kind %d has no rendering", k)
		}
		seen[s] = true
	}
	if len(seen) != int(numKinds) {
		t.Errorf("fault renderings collide: %d unique of %d", len(seen), numKinds)
	}
}

func TestWriteDisturb(t *testing.T) {
	// <0w0/↑>: writing 0 into a cell holding 0 flips it to 1.
	m := NewInjected(8, 1, 1, Fault{Kind: WDF, Cell: 2, Value: false, Port: AnyPort})
	m.Write(0, 2, 0) // non-transition write: cell flips
	if got := m.Read(0, 2); got != 1 {
		t.Errorf("WDF cell = %d after 0w0, want 1", got)
	}
	m.Write(0, 2, 0) // transition write 1->0: normal
	if got := m.Read(0, 2); got != 0 {
		t.Errorf("WDF cell = %d after transition write, want 0", got)
	}
}

func TestIncorrectRead(t *testing.T) {
	// <r0/-/1>: reading a 0 cell returns 1 but the cell keeps 0.
	m := NewInjected(8, 1, 1, Fault{Kind: IRF, Cell: 5, Value: false, Port: AnyPort})
	m.Write(0, 5, 0)
	if got := m.Read(0, 5); got != 1 {
		t.Errorf("IRF read = %d, want 1", got)
	}
	if m.CellState(5) {
		t.Error("IRF changed the cell state")
	}
	m.Write(0, 5, 1)
	if got := m.Read(0, 5); got != 1 {
		t.Errorf("IRF read of 1 cell = %d, want 1", got)
	}
}

func TestDeceptiveReadDestructive(t *testing.T) {
	// <r0/↑/0>: reading a 0 cell returns 0 but flips the cell to 1.
	m := NewInjected(8, 1, 1, Fault{Kind: DRDF, Cell: 4, Value: false, Port: AnyPort})
	m.Write(0, 4, 0)
	if got := m.Read(0, 4); got != 0 {
		t.Errorf("DRDF first read = %d, want deceptive 0", got)
	}
	if got := m.Read(0, 4); got != 1 {
		t.Errorf("DRDF second read = %d, want 1 (cell flipped)", got)
	}
}

func TestUniverseExhaustiveCounts(t *testing.T) {
	fs := Universe(4, 1, UniverseOpts{})
	// 4 cells * 15 single-cell faults + 3 neighbour pairs * 2 dirs * 8
	// coupling faults + 4 addrs * 3 AF faults.
	want := 4*15 + 6*8 + 4*3
	if len(fs) != want {
		t.Errorf("universe size = %d, want %d", len(fs), want)
	}
	// Determinism.
	fs2 := Universe(4, 1, UniverseOpts{})
	for i := range fs {
		if fs[i] != fs2[i] {
			t.Fatalf("universe not deterministic at %d", i)
		}
	}
	// Every fault injects cleanly.
	for _, f := range fs {
		NewInjected(4, 1, 1, f)
	}
}

func TestUniverseSampling(t *testing.T) {
	fs := Universe(64, 4, UniverseOpts{CellSample: 8, CouplingPairs: 10, AddrSample: 4, Seed: 1})
	want := 8*15 + 10*8 + 4*3
	if len(fs) != want {
		t.Errorf("sampled universe size = %d, want %d", len(fs), want)
	}
	for _, f := range fs {
		NewInjected(64, 4, 1, f)
	}
}

func TestUniversePortFaults(t *testing.T) {
	fs := Universe(4, 1, UniverseOpts{Ports: 2})
	n := 0
	for _, f := range fs {
		if f.Port == 1 {
			n++
		}
	}
	if n != 8 { // 4 cells * SA0/SA1
		t.Errorf("port-specific faults = %d, want 8", n)
	}
}
