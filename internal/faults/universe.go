package faults

import "math/rand"

// UniverseOpts controls fault-universe generation.
type UniverseOpts struct {
	// CouplingPairs bounds the number of (aggressor, victim) pairs per
	// coupling fault family. Zero means every ordered neighbour pair
	// (cells i and i±1, plus word-adjacent cells for word-oriented
	// memories).
	CouplingPairs int
	// CellSample bounds the number of victim cells per single-cell fault
	// family (0 = every cell).
	CellSample int
	// AddrSample bounds the number of faulty addresses per decoder fault
	// family (0 = every address, paired with the next address).
	AddrSample int
	// Ports > 1 additionally generates port-specific stuck-at read
	// faults on ports 1..Ports-1.
	Ports int
	// Seed drives sampling; the same seed reproduces the same universe.
	Seed int64
}

// Universe enumerates a deterministic functional-fault universe for a
// memory of the given geometry. With zero-valued opts it is exhaustive
// over cells and neighbour coupling pairs — suitable for the small
// memories the coverage experiments use.
func Universe(size, width int, opts UniverseOpts) []Fault {
	rng := rand.New(rand.NewSource(opts.Seed))
	nCells := size * width
	var fs []Fault

	cells := sampleInts(nCells, opts.CellSample, rng)
	for _, c := range cells {
		fs = append(fs,
			Fault{Kind: SA, Cell: c, Value: false, Port: AnyPort},
			Fault{Kind: SA, Cell: c, Value: true, Port: AnyPort},
			Fault{Kind: TF, Cell: c, Value: true, Port: AnyPort},  // ⟨↑⟩ cannot rise
			Fault{Kind: TF, Cell: c, Value: false, Port: AnyPort}, // ⟨↓⟩ cannot fall
			Fault{Kind: SOF, Cell: c, Port: AnyPort},
			Fault{Kind: DRF, Cell: c, Value: false, Port: AnyPort},
			Fault{Kind: DRF, Cell: c, Value: true, Port: AnyPort},
			Fault{Kind: RDF, Cell: c, Value: false, Port: AnyPort},
			Fault{Kind: RDF, Cell: c, Value: true, Port: AnyPort},
			Fault{Kind: WDF, Cell: c, Value: false, Port: AnyPort},
			Fault{Kind: WDF, Cell: c, Value: true, Port: AnyPort},
			Fault{Kind: IRF, Cell: c, Value: false, Port: AnyPort},
			Fault{Kind: IRF, Cell: c, Value: true, Port: AnyPort},
			Fault{Kind: DRDF, Cell: c, Value: false, Port: AnyPort},
			Fault{Kind: DRDF, Cell: c, Value: true, Port: AnyPort},
		)
	}

	pairs := couplingPairs(nCells, width, opts.CouplingPairs, rng)
	for _, p := range pairs {
		agg, vic := p[0], p[1]
		fs = append(fs,
			Fault{Kind: CFin, Aggressor: agg, Cell: vic, AggVal: true, Port: AnyPort},
			Fault{Kind: CFin, Aggressor: agg, Cell: vic, AggVal: false, Port: AnyPort},
			Fault{Kind: CFid, Aggressor: agg, Cell: vic, AggVal: true, Value: false, Port: AnyPort},
			Fault{Kind: CFid, Aggressor: agg, Cell: vic, AggVal: true, Value: true, Port: AnyPort},
			Fault{Kind: CFid, Aggressor: agg, Cell: vic, AggVal: false, Value: false, Port: AnyPort},
			Fault{Kind: CFid, Aggressor: agg, Cell: vic, AggVal: false, Value: true, Port: AnyPort},
			Fault{Kind: CFst, Aggressor: agg, Cell: vic, AggVal: true, Value: false, Port: AnyPort},
			Fault{Kind: CFst, Aggressor: agg, Cell: vic, AggVal: true, Value: true, Port: AnyPort},
		)
	}

	addrs := sampleInts(size, opts.AddrSample, rng)
	for _, a := range addrs {
		other := (a + 1) % size
		if other == a {
			continue
		}
		fs = append(fs,
			Fault{Kind: AFNone, Addr: a, Port: AnyPort},
			Fault{Kind: AFMap, Addr: a, AggAddr: other, Port: AnyPort},
			Fault{Kind: AFMulti, Addr: a, AggAddr: other, Port: AnyPort},
		)
	}

	for p := 1; p < opts.Ports; p++ {
		for _, c := range cells {
			fs = append(fs,
				Fault{Kind: SA, Cell: c, Value: false, Port: p},
				Fault{Kind: SA, Cell: c, Value: true, Port: p},
			)
		}
	}
	return fs
}

func sampleInts(n, limit int, rng *rand.Rand) []int {
	if limit <= 0 || limit >= n {
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		return all
	}
	perm := rng.Perm(n)[:limit]
	return perm
}

// couplingPairs returns ordered (aggressor, victim) pairs. Exhaustive
// mode uses physical neighbours: bit-adjacent cells and word-adjacent
// cells (same bit lane, next word) in both directions.
func couplingPairs(nCells, width, limit int, rng *rand.Rand) [][2]int {
	var pairs [][2]int
	if limit <= 0 {
		for c := 0; c < nCells; c++ {
			if c+1 < nCells {
				pairs = append(pairs, [2]int{c, c + 1}, [2]int{c + 1, c})
			}
			if width > 1 && c+width < nCells {
				pairs = append(pairs, [2]int{c, c + width}, [2]int{c + width, c})
			}
		}
		return pairs
	}
	seen := make(map[[2]int]bool)
	for len(pairs) < limit && len(seen) < nCells*(nCells-1) {
		a, v := rng.Intn(nCells), rng.Intn(nCells)
		if a == v || seen[[2]int{a, v}] {
			continue
		}
		seen[[2]int{a, v}] = true
		pairs = append(pairs, [2]int{a, v})
	}
	return pairs
}
