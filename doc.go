// Package mbist is a library of programmable memory built-in self-test
// (BIST) architectures, reproducing "On Programmable Memory Built-In
// Self Test Architectures" (Zarrineh and Upadhyaya, DATE 1999).
//
// It provides:
//
//   - march test algorithms and notation (March C/C+/C++, A/A+/A++,
//     MATS+, X, Y, B), with parsing, validation, complexity analysis and
//     symmetry folding (internal/march);
//   - a memory-under-test simulator with the classical functional fault
//     models — stuck-at, transition, coupling, stuck-open, retention,
//     read-disturb and address-decoder faults (internal/memory,
//     internal/faults);
//   - the paper's microcode-based programmable BIST controller: a 10-bit
//     microcode ISA, an assembler with Repeat/reference-register
//     symmetry folding, a cycle-accurate executor and a structural
//     netlist generator including the scan-only storage re-design
//     (internal/microbist);
//   - the programmable FSM-based BIST controller: SM0-SM7 march
//     components, a compiler with decomposition, executor and netlist
//     generator (internal/fsmbist);
//   - generated hardwired (non-programmable) controllers as baselines
//     (internal/hardbist);
//   - gate-level synthesis substrate: boolean minimisation, a standard
//     cell library with a CMOS5S-like 0.35µm technology file, netlist
//     builders and a simulator (internal/logic, internal/netlist,
//     internal/fsm, internal/gatesim);
//   - fault-coverage grading across architectures (internal/coverage)
//     and fail-bitmap diagnosis (internal/diag);
//   - the paper's evaluation: area Tables 1-3 and the four concluding
//     observations (internal/core).
//
// This top-level package is a thin facade over those building blocks;
// see the examples directory for end-to-end usage and cmd/ for the
// tools that regenerate each table and figure of the paper.
package mbist
