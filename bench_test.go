package mbist

// The benchmark harness regenerates every table and figure of the
// paper's evaluation:
//
//	BenchmarkTable1        — Table 1 (bit-oriented single-port sizes)
//	BenchmarkTable2        — Table 2 (word-oriented and multiport sizes)
//	BenchmarkTable3        — Table 3 (scan-only storage re-design)
//	BenchmarkObservations  — the §3 observation measurements
//	BenchmarkFig2Assemble  — Fig. 2 (March C microcode program)
//	BenchmarkFig5Compile   — Fig. 5 (March C FSM-based program)
//	BenchmarkTestTime      — test-application cycles per architecture
//	BenchmarkCoverage      — fault-coverage grading per algorithm
//	BenchmarkFoldAblation  — Repeat-fold storage ablation
//
// Each bench prints its regenerated rows once, so `go test -bench=.`
// reproduces the paper's evaluation artefacts in one run.

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/coverage"
	"repro/internal/fsmbist"
	"repro/internal/march"
	"repro/internal/microbist"
)

var printOnce sync.Map

// printBench prints s once per key across the benchmark run.
func printBench(key, s string) {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		fmt.Printf("\n===== %s =====\n%s\n", key, s)
	}
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := Table1()
		if err != nil {
			b.Fatal(err)
		}
		printBench("Table 1", t.String())
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := Table2()
		if err != nil {
			b.Fatal(err)
		}
		printBench("Table 2", t.String())
	}
}

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := Table3()
		if err != nil {
			b.Fatal(err)
		}
		printBench("Table 3", t.String())
	}
}

func BenchmarkObservations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o, err := MeasureObservations()
		if err != nil {
			b.Fatal(err)
		}
		if err := o.Check(); err != nil {
			b.Fatal(err)
		}
		printBench("Observations", o.String())
	}
}

func BenchmarkFig2Assemble(b *testing.B) {
	alg := march.MarchC()
	var p *microbist.Program
	for i := 0; i < b.N; i++ {
		var err error
		p, err = microbist.Assemble(alg, microbist.AssembleOpts{WordOriented: true, Multiport: true})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(p.Len()), "instructions")
	printBench("Fig. 2: March C microcode program", p.Listing())
}

func BenchmarkFig5Compile(b *testing.B) {
	alg := march.MarchC()
	var p *fsmbist.Program
	for i := 0; i < b.N; i++ {
		var err error
		p, err = fsmbist.Compile(alg, fsmbist.CompileOpts{WordOriented: true, Multiport: true})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(p.Len()), "instructions")
	printBench("Fig. 5: March C FSM-based program", p.Listing())
}

// BenchmarkTestTime measures test-application time (controller cycles)
// per architecture, algorithm and memory size — the BIST figure of
// merit the paper's introduction motivates (on-chip test time versus
// external testers).
func BenchmarkTestTime(b *testing.B) {
	algs := []string{"marchc", "marchc++", "marcha"}
	archs := []Architecture{Microcode, ProgFSM, Hardwired}
	sizes := []int{256, 1024}
	var rows []string
	for _, name := range algs {
		alg, _ := AlgorithmByName(name)
		for _, arch := range archs {
			for _, n := range sizes {
				b.Run(fmt.Sprintf("%s/%v/N=%d", name, arch, n), func(b *testing.B) {
					var cycles int
					for i := 0; i < b.N; i++ {
						mem := mustMem(NewSRAM(n, 1, 1))
						res, err := Run(arch, alg, mem, RunOptions{})
						if err != nil {
							b.Fatal(err)
						}
						cycles = res.Cycles
					}
					b.ReportMetric(float64(cycles), "cycles")
					b.ReportMetric(float64(cycles)/float64(n), "cycles/bit")
					rows = append(rows, fmt.Sprintf("%-10s %-10v N=%-5d %8d cycles (%.2f per bit)",
						name, arch, n, cycles, float64(cycles)/float64(n)))
				})
			}
		}
	}
	if len(rows) == 3*3*2 {
		out := ""
		for _, r := range rows {
			out += r + "\n"
		}
		printBench("Test time", out)
	}
}

// BenchmarkCoverage grades fault coverage per algorithm on the
// microcode architecture (extension experiment X1).
func BenchmarkCoverage(b *testing.B) {
	for _, name := range []string{"mats+", "marchc", "marchc+", "marchc++"} {
		alg, _ := AlgorithmByName(name)
		b.Run(name, func(b *testing.B) {
			var rep *coverage.Report
			for i := 0; i < b.N; i++ {
				var err error
				rep, err = GradeCoverage(alg, Microcode, CoverageOptions{Size: 8})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(rep.Overall.Percent(), "coverage%")
			printBench("Coverage "+name, rep.String())
		})
	}
}

// BenchmarkFoldAblation quantifies the Repeat/reference-register
// mechanism: microcode storage needed with and without symmetry
// folding (a DESIGN.md ablation).
func BenchmarkFoldAblation(b *testing.B) {
	var rows string
	for _, name := range []string{"marchc", "marcha", "marchc+", "marcha+"} {
		alg, _ := AlgorithmByName(name)
		var folded, flat *microbist.Program
		for i := 0; i < b.N; i++ {
			var err error
			folded, err = microbist.Assemble(alg, microbist.AssembleOpts{WordOriented: true, Multiport: true})
			if err != nil {
				b.Fatal(err)
			}
			flat, err = microbist.Assemble(alg, microbist.AssembleOpts{WordOriented: true, Multiport: true, DisableFold: true})
			if err != nil {
				b.Fatal(err)
			}
		}
		rows += fmt.Sprintf("%-10s folded %2d instructions, unfolded %2d (%.0f%% storage saved)\n",
			name, folded.Len(), flat.Len(), 100*(1-float64(folded.Len())/float64(flat.Len())))
	}
	printBench("Fold ablation", rows)
}

// BenchmarkExecutorThroughput measures the raw simulation speed of the
// microcode executor (simulator performance, not a paper artefact).
func BenchmarkExecutorThroughput(b *testing.B) {
	alg, _ := AlgorithmByName("marchc")
	p, err := microbist.Assemble(alg, microbist.AssembleOpts{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mem := mustMem(NewSRAM(1024, 1, 1))
		if _, err := p.Run(mem, microbist.ExecOpts{}); err != nil {
			b.Fatal(err)
		}
	}
}
