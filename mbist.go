package mbist

import (
	"fmt"

	"repro/internal/coverage"
	"repro/internal/faults"
	"repro/internal/fsmbist"
	"repro/internal/hardbist"
	"repro/internal/lint"
	"repro/internal/march"
	"repro/internal/memory"
	"repro/internal/microbist"
	"repro/internal/netlist"
	"repro/internal/obs"
)

// Re-exported core types. The facade aliases the internal packages'
// types so callers can stay within this package for common flows.
type (
	// Algorithm is a march test algorithm.
	Algorithm = march.Algorithm
	// Element is one march element.
	Element = march.Element
	// Fail is one logged miscompare.
	Fail = march.Fail
	// Memory is the memory-under-test interface.
	Memory = memory.Memory
	// Fault is an injectable functional fault.
	Fault = faults.Fault
	// Architecture selects a BIST controller architecture.
	Architecture = coverage.Architecture
)

// Architectures.
const (
	// Reference runs the algorithm directly (no controller model).
	Reference = coverage.Reference
	// Microcode is the paper's microcode-based programmable controller.
	Microcode = coverage.Microcode
	// ProgFSM is the paper's programmable FSM-based controller.
	ProgFSM = coverage.ProgFSM
	// Hardwired is a generated non-programmable controller.
	Hardwired = coverage.Hardwired
)

// Algorithms returns the built-in march algorithm library keyed by
// canonical name (marchc, marchc+, marcha++, mats+, ...).
func Algorithms() map[string]func() Algorithm { return march.Library() }

// AlgorithmByName looks up a library algorithm.
func AlgorithmByName(name string) (Algorithm, bool) { return march.ByName(name) }

// ParseAlgorithm parses the ASCII march notation, e.g.
// "b(w0); u(r0,w1); d(r1,w0)".
func ParseAlgorithm(name, text string) (Algorithm, error) { return march.Parse(name, text) }

// NewSRAM returns a fault-free memory of the given geometry, or an
// error describing the first invalid parameter. The facade is the
// validated front door: the internal constructors it wraps panic on
// bad geometry (see the internal packages' panic contracts).
func NewSRAM(size, width, ports int) (Memory, error) {
	if err := memory.Validate(size, width, ports); err != nil {
		return nil, err
	}
	return memory.NewSRAM(size, width, ports), nil
}

// NewFaultyMemory returns a memory with the given faults injected, or
// an error if the geometry or any fault is invalid (cell or address
// out of range, coupling victim equal to aggressor, port out of
// range, unknown fault kind).
func NewFaultyMemory(size, width, ports int, fs ...Fault) (Memory, error) {
	if err := faults.Validate(size, width, ports, fs...); err != nil {
		return nil, err
	}
	return faults.NewInjected(size, width, ports, fs...), nil
}

// Result is the unified outcome of a BIST run.
type Result struct {
	// Pass is true when no miscompare occurred.
	Pass bool
	// Fails are the logged miscompares (diagnostic mode).
	Fails []Fail
	// Cycles is the controller cycle count (0 for Reference).
	Cycles int
	// Operations is the number of memory operations issued.
	Operations int
	// Signature is the MISR signature of the read stream (0 for
	// Reference).
	Signature uint16
}

// RunOptions tunes a Run.
type RunOptions struct {
	// MaxFails caps the fail log; 0 keeps every record (diagnosis).
	MaxFails int
}

// Run executes a march algorithm on a memory through the selected BIST
// architecture. Word-oriented memories are tested under every data
// background; multiport memories on every port.
func Run(arch Architecture, alg Algorithm, mem Memory, opts RunOptions) (*Result, error) {
	res, err := runArch(arch, alg, mem, opts)
	if err != nil {
		return nil, err
	}
	if reg := obs.Active(); reg != nil && int(arch) < len(runMetricNames) {
		names := runMetricNames[arch]
		reg.Counter(names.runs).Add(1)
		reg.Counter(names.operations).Add(int64(res.Operations))
		reg.Counter(names.cycles).Add(int64(res.Cycles))
		reg.Counter(names.fails).Add(int64(len(res.Fails)))
	}
	return res, nil
}

// runCounterNames holds the per-architecture obs counter names, built
// once at init so Run's metrics exit performs no string construction.
type runCounterNames struct {
	runs, operations, cycles, fails string
}

var runMetricNames = func() [Hardwired + 1]runCounterNames {
	var t [Hardwired + 1]runCounterNames
	for a := range t {
		prefix := "run." + Architecture(a).String() + "."
		t[a] = runCounterNames{
			runs:       prefix + "runs",
			operations: prefix + "operations",
			cycles:     prefix + "cycles",
			fails:      prefix + "fails",
		}
	}
	return t
}()

func runArch(arch Architecture, alg Algorithm, mem Memory, opts RunOptions) (*Result, error) {
	word := mem.Width() > 1
	multi := mem.Ports() > 1
	switch arch {
	case Reference:
		res, err := march.Run(alg, mem, march.RunOpts{
			MaxFails: opts.MaxFails, SinglePort: !multi, SingleBackground: !word,
		})
		if err != nil {
			return nil, err
		}
		return &Result{
			Pass:       !res.Detected(),
			Fails:      res.Fails,
			Operations: res.Operations,
		}, nil
	case Microcode:
		p, err := microbist.Assemble(alg, microbist.AssembleOpts{WordOriented: word, Multiport: multi})
		if err != nil {
			return nil, err
		}
		res, err := p.Run(mem, microbist.ExecOpts{MaxFails: opts.MaxFails})
		if err != nil {
			return nil, err
		}
		if !res.Terminated {
			return nil, fmt.Errorf("mbist: microcode run exceeded its cycle budget")
		}
		return &Result{
			Pass: !res.Detected(), Fails: res.Fails,
			Cycles: res.Cycles, Operations: res.Operations, Signature: res.Signature,
		}, nil
	case ProgFSM:
		p, err := fsmbist.Compile(alg, fsmbist.CompileOpts{WordOriented: word, Multiport: multi})
		if err != nil {
			return nil, err
		}
		res, err := p.Run(mem, fsmbist.ExecOpts{MaxFails: opts.MaxFails})
		if err != nil {
			return nil, err
		}
		if !res.Terminated {
			return nil, fmt.Errorf("mbist: prog-fsm run exceeded its cycle budget")
		}
		return &Result{
			Pass: !res.Detected(), Fails: res.Fails,
			Cycles: res.Cycles, Operations: res.Operations, Signature: res.Signature,
		}, nil
	case Hardwired:
		c, err := hardbist.Generate(alg, hardbist.Config{
			WordOriented: word, Multiport: multi,
			AddrBits: addrBits(mem.Size()), Width: mem.Width(), Ports: mem.Ports(),
		})
		if err != nil {
			return nil, err
		}
		res, err := c.Run(mem, hardbist.ExecOpts{MaxFails: opts.MaxFails})
		if err != nil {
			return nil, err
		}
		if !res.Terminated {
			return nil, fmt.Errorf("mbist: hardwired run exceeded its cycle budget")
		}
		return &Result{
			Pass: !res.Detected(), Fails: res.Fails,
			Cycles: res.Cycles, Operations: res.Operations, Signature: res.Signature,
		}, nil
	default:
		return nil, fmt.Errorf("mbist: unknown architecture %v", arch)
	}
}

func addrBits(size int) int {
	b := 0
	for 1<<uint(b) < size {
		b++
	}
	if b == 0 {
		b = 1
	}
	return b
}

// TechLibrary returns the CMOS5S-like 0.35µm cell library used by the
// area evaluation.
func TechLibrary() *netlist.Library { return &netlist.CMOS5SLike }

// Static verification (design-rule checking) re-exports.
type (
	// LintReport aggregates the findings of a lint run.
	LintReport = lint.Report
	// LintFinding is one design-rule violation.
	LintFinding = lint.Finding
	// LintSeverity ranks a finding.
	LintSeverity = lint.Severity
	// LintOptions tunes what the full-matrix lint covers.
	LintOptions = lint.MatrixOpts
	// LintArch selects a synthesised architecture for the lint matrix
	// (unlike Architecture it has no behavioural Reference entry, and it
	// distinguishes the microcode controller's scan-storage re-design).
	LintArch = lint.Arch
)

// Lint severities and matrix architectures.
const (
	LintInfo    = lint.Info
	LintWarning = lint.Warning
	LintError   = lint.Error

	LintMicrocode     = lint.Microcode
	LintMicrocodeScan = lint.MicrocodeScan
	LintProgFSM       = lint.ProgFSM
	LintHardwired     = lint.Hardwired
)

// Lint statically verifies the synthesised matrix: netlist design-rule
// checks, microcode control-flow and termination analysis, and march
// well-formedness for every selected algorithm, architecture and memory
// geometry. No simulation is involved.
func Lint(opts LintOptions) (*LintReport, error) { return lint.Matrix(opts) }
