package mbist

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/faults"
)

// mustMem unwraps the facade constructors' (Memory, error) pair for
// tests and benchmarks built on known-good geometry.
func mustMem(m Memory, err error) Memory {
	if err != nil {
		panic(err)
	}
	return m
}

func TestRunAllArchitecturesCleanMemory(t *testing.T) {
	alg, ok := AlgorithmByName("marchc")
	if !ok {
		t.Fatal("marchc missing from library")
	}
	for _, arch := range []Architecture{Reference, Microcode, ProgFSM, Hardwired} {
		mem := mustMem(NewSRAM(64, 1, 1))
		res, err := Run(arch, alg, mem, RunOptions{})
		if err != nil {
			t.Fatalf("%v: %v", arch, err)
		}
		if !res.Pass {
			t.Errorf("%v: clean memory failed: %v", arch, res.Fails)
		}
		if res.Operations != 10*64 {
			t.Errorf("%v: operations = %d, want %d", arch, res.Operations, 640)
		}
	}
}

func TestRunDetectsInjectedFault(t *testing.T) {
	alg, _ := AlgorithmByName("marchc")
	f := Fault{Kind: faults.SA, Cell: 17, Value: true, Port: faults.AnyPort}
	for _, arch := range []Architecture{Reference, Microcode, ProgFSM, Hardwired} {
		mem := mustMem(NewFaultyMemory(64, 1, 1, f))
		res, err := Run(arch, alg, mem, RunOptions{MaxFails: 1})
		if err != nil {
			t.Fatalf("%v: %v", arch, err)
		}
		if res.Pass {
			t.Errorf("%v missed %v", arch, f)
		}
		if len(res.Fails) == 0 || res.Fails[0].Addr != 17 {
			t.Errorf("%v: fail log %v", arch, res.Fails)
		}
	}
}

func TestRunWordOrientedMultiport(t *testing.T) {
	alg, _ := AlgorithmByName("marchc")
	f := Fault{Kind: faults.SA, Cell: 3*8 + 5, Value: false, Port: 1}
	mem := mustMem(NewFaultyMemory(16, 8, 2, f))
	res, err := Run(Microcode, alg, mem, RunOptions{MaxFails: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Pass {
		t.Error("port-specific fault missed")
	}
	if res.Fails[0].Port != 1 {
		t.Errorf("fail attributed to port %d, want 1", res.Fails[0].Port)
	}
}

func TestParseAlgorithmFacade(t *testing.T) {
	alg, err := ParseAlgorithm("custom", "b(w1); u(r1,w0); d(r0,w1); b(r1)")
	if err != nil {
		t.Fatal(err)
	}
	mem := mustMem(NewSRAM(16, 1, 1))
	res, err := Run(Microcode, alg, mem, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Pass {
		t.Errorf("custom algorithm failed on clean memory: %v", res.Fails)
	}
}

func TestFacadeConstructorsRejectBadInput(t *testing.T) {
	if _, err := NewSRAM(0, 1, 1); err == nil {
		t.Error("NewSRAM accepted size 0")
	}
	if _, err := NewSRAM(16, 65, 1); err == nil {
		t.Error("NewSRAM accepted width 65")
	}
	if _, err := NewSRAM(16, 1, 0); err == nil {
		t.Error("NewSRAM accepted 0 ports")
	}
	if _, err := NewFaultyMemory(16, 0, 1); err == nil {
		t.Error("NewFaultyMemory accepted width 0")
	}
	if _, err := NewFaultyMemory(16, 1, 1,
		Fault{Kind: faults.SA, Cell: 16, Port: faults.AnyPort}); err == nil {
		t.Error("NewFaultyMemory accepted out-of-range victim cell")
	}
	if _, err := NewFaultyMemory(16, 1, 1,
		Fault{Kind: faults.CFid, Cell: 3, Aggressor: 3, Port: faults.AnyPort}); err == nil {
		t.Error("NewFaultyMemory accepted victim == aggressor coupling")
	}
	if _, err := NewFaultyMemory(16, 1, 1,
		Fault{Kind: faults.AFMap, Addr: 2, AggAddr: 99, Port: faults.AnyPort}); err == nil {
		t.Error("NewFaultyMemory accepted out-of-range aggressor address")
	}
	if _, err := NewFaultyMemory(16, 1, 2,
		Fault{Kind: faults.SA, Cell: 1, Port: 2}); err == nil {
		t.Error("NewFaultyMemory accepted out-of-range port")
	}
	if _, err := NewFaultyMemory(16, 1, 1,
		Fault{Kind: faults.Kind(200), Port: faults.AnyPort}); err == nil {
		t.Error("NewFaultyMemory accepted unknown fault kind")
	}
	if _, err := NewFaultyMemory(16, 1, 1,
		Fault{Kind: faults.SA, Cell: 15, Port: faults.AnyPort}); err != nil {
		t.Errorf("NewFaultyMemory rejected a valid fault: %v", err)
	}
}

func TestAlgorithmsLibraryComplete(t *testing.T) {
	lib := Algorithms()
	for _, name := range []string{"mats+", "marchx", "marchy", "marchc", "marchc+", "marchc++", "marcha", "marcha+", "marcha++", "marchb"} {
		if _, ok := lib[name]; !ok {
			t.Errorf("library missing %q", name)
		}
	}
}

// Observations are expensive to measure (full synthesis of every
// controller); measure once and share across the observation tests.
var (
	obsOnce sync.Once
	obsVal  *Observations
	obsErr  error
)

func measuredObservations(t *testing.T) *Observations {
	t.Helper()
	obsOnce.Do(func() { obsVal, obsErr = MeasureObservations() })
	if obsErr != nil {
		t.Fatal(obsErr)
	}
	return obsVal
}

func TestObservation1ScanOnlyReduction(t *testing.T) {
	o := measuredObservations(t)
	if o.ScanOnlyReduction < 0.40 || o.ScanOnlyReduction > 0.75 {
		t.Errorf("scan-only re-design saves %.0f%%, paper reports ≈60%%", o.ScanOnlyReduction*100)
	}
}

func TestObservation2MicrocodeSmallerThanProgFSM(t *testing.T) {
	o := measuredObservations(t)
	if o.MicroGE >= o.ProgFSMGE {
		t.Errorf("microcode %.1f GE not below programmable FSM %.1f GE", o.MicroGE, o.ProgFSMGE)
	}
}

func TestObservation3EnhancementGrowsBaselines(t *testing.T) {
	o := measuredObservations(t)
	for _, fam := range [][]string{
		{"March C", "March C+", "March C++"},
		{"March A", "March A+", "March A++"},
	} {
		for i := 1; i < len(fam); i++ {
			if o.BaselineGrowth[fam[i]] <= o.BaselineGrowth[fam[i-1]] {
				t.Errorf("%s (%.1f GE) not larger than %s (%.1f GE)",
					fam[i], o.BaselineGrowth[fam[i]], fam[i-1], o.BaselineGrowth[fam[i-1]])
			}
		}
	}
}

func TestObservation4GapNarrows(t *testing.T) {
	o := measuredObservations(t)
	if o.GapEnhanced >= o.GapPlain {
		t.Errorf("microcode/baseline ratio %.2f (March C) should exceed %.2f (March A++)",
			o.GapPlain, o.GapEnhanced)
	}
}

func TestCoverageMatrixFacade(t *testing.T) {
	algs := []Algorithm{}
	for _, name := range []string{"mats+", "marchc", "marchc++"} {
		a, _ := AlgorithmByName(name)
		algs = append(algs, a)
	}
	out, err := CoverageMatrix(algs, Reference, CoverageOptions{Size: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "overall") || !strings.Contains(out, "March C++") {
		t.Errorf("matrix rendering:\n%s", out)
	}
}

func TestTechLibrary(t *testing.T) {
	lib := TechLibrary()
	if lib.Name == "" {
		t.Error("library has no name")
	}
}

func TestMicrocodeLoadCostFacade(t *testing.T) {
	alg, _ := AlgorithmByName("marcha++")
	lc, err := MicrocodeLoadCost(alg, 8)
	if err != nil {
		t.Fatal(err)
	}
	if lc.Loads < 2 {
		t.Errorf("March A++ in 8 slots: loads = %d, want multiple", lc.Loads)
	}
	lc2, err := MicrocodeLoadCost(alg, lc.ProgramWords)
	if err != nil {
		t.Fatal(err)
	}
	if lc2.Loads != 1 {
		t.Errorf("exact-fit storage still needs %d loads", lc2.Loads)
	}
}
