package mbist

import (
	"context"

	"repro/internal/core"
	"repro/internal/coverage"
	"repro/internal/netlist"
)

// Table is an area comparison table (paper Tables 1-3).
type Table = core.Table

// Observations quantifies the paper's four concluding observations.
type Observations = core.Observations

// Table1 regenerates the structure of the paper's Table 1: the size of
// every BIST method for a bit-oriented single-port memory.
func Table1() (*Table, error) { return core.Table1(&netlist.CMOS5SLike) }

// Table2 regenerates the paper's Table 2: word-oriented and multiport
// memories.
func Table2() (*Table, error) { return core.Table2(&netlist.CMOS5SLike) }

// Table3 regenerates the paper's Table 3: the microcode-based
// controller with scan-only storage cells.
func Table3() (*Table, error) { return core.Table3(&netlist.CMOS5SLike) }

// MeasureObservations computes the paper's four observations from the
// regenerated tables.
func MeasureObservations() (*Observations, error) {
	return core.Measure(&netlist.CMOS5SLike)
}

// LifecycleCost compares one programmable controller against per-stage
// hardwired controllers across the memory's test life cycle.
type LifecycleCost = core.LifecycleCost

// MeasureLifecycle sizes the lifecycle comparison (paper §1's "overall
// test logic overhead" claim).
func MeasureLifecycle() (*LifecycleCost, error) {
	return core.MeasureLifecycle(&netlist.CMOS5SLike)
}

// LoadCost models the scan-programming cost of a microcode controller
// with the given storage capacity running the algorithm.
type LoadCost = core.LoadCost

// MicrocodeLoadCost computes the scan-load cost for an algorithm and
// storage size.
func MicrocodeLoadCost(alg Algorithm, slots int) (LoadCost, error) {
	return core.MicrocodeLoadCost(alg, slots)
}

// CoverageReport is a fault-coverage grading result.
type CoverageReport = coverage.Report

// CoverageOptions configures fault-coverage grading.
type CoverageOptions = coverage.Options

// CoverageState is the resumable progress of a grading run, produced
// by CoverageOptions.Checkpoint and consumed by CoverageOptions.Resume.
type CoverageState = coverage.State

// CoverageFaultVerdict records one quarantined fault in a report.
type CoverageFaultVerdict = coverage.FaultVerdict

// CoverageEngine selects the fault-simulation engine.
type CoverageEngine = coverage.Engine

// Coverage engines.
const (
	// CoverageEngineAuto uses lane-parallel stream replay when the
	// architecture's operation stream matches the reference stream,
	// falling back to the scalar oracle otherwise.
	CoverageEngineAuto = coverage.EngineAuto
	// CoverageEngineScalar simulates one fault at a time.
	CoverageEngineScalar = coverage.EngineScalar
)

// GradeCoverage runs the algorithm against the functional fault
// universe on the selected architecture.
func GradeCoverage(alg Algorithm, arch Architecture, opts CoverageOptions) (*CoverageReport, error) {
	return coverage.Grade(alg, arch, opts)
}

// GradeCoverageSerial grades with the scalar one-fault-at-a-time
// oracle the lane-parallel engine is validated against.
func GradeCoverageSerial(alg Algorithm, arch Architecture, opts CoverageOptions) (*CoverageReport, error) {
	return coverage.GradeSerial(alg, arch, opts)
}

// GradeCoverageContext is GradeCoverage with cancellation: workers
// stop at the next fault (or batch) boundary once ctx is done and the
// valid partial report is returned alongside the context's error.
func GradeCoverageContext(ctx context.Context, alg Algorithm, arch Architecture, opts CoverageOptions) (*CoverageReport, error) {
	return coverage.GradeContext(ctx, alg, arch, opts)
}

// CoverageFingerprint identifies a grading workload for
// checkpoint/resume validation (worker count and engine excluded —
// reports are byte-identical across both).
func CoverageFingerprint(alg Algorithm, arch Architecture, opts CoverageOptions) string {
	return coverage.Fingerprint(alg, arch, opts)
}

// CoverageMatrix renders a fault-kind × algorithm coverage table.
func CoverageMatrix(algs []Algorithm, arch Architecture, opts CoverageOptions) (string, error) {
	return coverage.Matrix(algs, arch, opts)
}

// RenderCoverageMatrix renders already-graded reports as the
// CoverageMatrix table, for drivers that grade per algorithm (e.g. to
// checkpoint between algorithms) and render at the end.
func RenderCoverageMatrix(reports []*CoverageReport) string {
	return coverage.RenderMatrix(reports)
}

// GradeCoverageShard grades shard `shard` of `of` — a contiguous slice
// of the fault universe — returning its resumable State. Grade every
// shard (anywhere: goroutine, process, machine), merge with
// MergeCoverageStates and render with CoverageReportFromState; the
// result is byte-identical to an unsharded GradeCoverage.
func GradeCoverageShard(alg Algorithm, arch Architecture, opts CoverageOptions, shard, of int) (*CoverageState, error) {
	return coverage.GradeShard(alg, arch, opts, shard, of)
}

// GradeCoverageShardContext is GradeCoverageShard with cancellation.
func GradeCoverageShardContext(ctx context.Context, alg Algorithm, arch Architecture, opts CoverageOptions, shard, of int) (*CoverageState, error) {
	return coverage.GradeShardContext(ctx, alg, arch, opts, shard, of)
}

// MergeCoverageStates combines disjoint shard states into one State,
// rejecting overlapping or mismatched shards.
func MergeCoverageStates(states ...*CoverageState) (*CoverageState, error) {
	return coverage.MergeStates(states...)
}

// CoverageReportFromState renders the final report of a completed
// sweep from its (merged) State without re-grading anything.
func CoverageReportFromState(alg Algorithm, arch Architecture, opts CoverageOptions, s *CoverageState) (*CoverageReport, error) {
	return coverage.ReportFromState(alg, arch, opts, s)
}
