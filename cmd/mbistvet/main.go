// Command mbistvet runs the repo's invariant analyzers (internal/vet)
// over Go packages. It is both a standalone sweeper and a `go vet`
// tool:
//
//	mbistvet ./...                        # standalone sweep
//	mbistvet -only hotpathalloc,obsname ./...
//	mbistvet -json ./...                  # machine-readable findings
//	go vet -vettool=$(pwd)/mbistvet ./... # as the vet driver's tool
//
// The vet-tool mode implements the (unpublished) cmd/go vet protocol:
// -V=full describes the executable for build caching, -flags lists the
// analyzer flags as JSON, and a trailing *.cfg argument analyzes one
// compilation unit described by the JSON config cmd/go writes —
// including the dependency-only units it schedules purely for their
// export side effects (VetxOnly).
//
// Exit status: 0 clean, 1 findings reported, 2 driver failure.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/vet/analysis"
	"repro/internal/vet/analyzers"
)

var (
	onlyFlag = flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	jsonFlag = flag.Bool("json", false, "emit findings as JSON keyed by package and analyzer")
	listFlag = flag.Bool("list", false, "list the analyzers and exit")

	// Vet driver protocol flags. -V prints the executable description
	// cmd/go caches on; the rest are legacy vet flags cmd/go passes to
	// every tool when vetting standard-library units — accepted, ignored.
	versionFlag = flag.String("V", "", "print version and exit (driver protocol)")
	printFlags  = flag.Bool("flags", false, "print analyzer flags in JSON (driver protocol)")
	_           = flag.Int("c", -1, "display offending line with this many lines of context (accepted for driver compatibility)")
	_           = flag.Bool("unsafeptr", true, "no effect (driver compatibility)")
	_           = flag.Bool("unreachable", true, "no effect (driver compatibility)")
	_           = flag.Bool("source", false, "no effect (driver compatibility)")
	_           = flag.Bool("tests", true, "no effect (driver compatibility)")
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mbistvet: ")
	flag.Parse()

	if *versionFlag != "" {
		printVersion()
		return
	}
	if *printFlags {
		printFlagDefs()
		return
	}
	if *listFlag {
		for _, a := range analyzers.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	suite := analyzers.All()
	if *onlyFlag != "" {
		var ok bool
		suite, ok = analyzers.ByName(strings.Split(*onlyFlag, ","))
		if !ok {
			log.Printf("unknown analyzer in -only=%s (run mbistvet -list)", *onlyFlag)
			os.Exit(2)
		}
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		runUnit(args[0], suite)
		return
	}
	runStandalone(args, suite)
}

// printVersion emits the executable description the go command's build
// cache keys vet results on: content-addressed so editing an analyzer
// invalidates cached findings.
func printVersion() {
	exe, err := os.Executable()
	var sum [sha256.Size]byte
	if err == nil {
		if data, rerr := os.ReadFile(exe); rerr == nil {
			sum = sha256.Sum256(data)
		}
	}
	fmt.Printf("mbistvet version devel buildID=%x\n", sum[:16])
}

// printFlagDefs describes the tool's flags to cmd/go (the -flags leg
// of the vet protocol), which uses it to validate pass-through flags.
func printFlagDefs() {
	type flagDef struct {
		Name  string `json:"Name"`
		Bool  bool   `json:"Bool"`
		Usage string `json:"Usage"`
	}
	var defs []flagDef
	flag.VisitAll(func(f *flag.Flag) {
		if f.Name == "V" || f.Name == "flags" {
			return
		}
		isBool := false
		if bf, ok := f.Value.(interface{ IsBoolFlag() bool }); ok {
			isBool = bf.IsBoolFlag()
		}
		defs = append(defs, flagDef{Name: f.Name, Bool: isBool, Usage: f.Usage})
	})
	data, err := json.MarshalIndent(defs, "", "\t")
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)
	fmt.Println()
}

// vetConfig is the JSON compilation-unit description cmd/go hands the
// tool (a subset of cmd/go's vetConfig).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runUnit analyzes one vet compilation unit.
func runUnit(cfgPath string, suite []*analysis.Analyzer) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		log.Fatal(err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		log.Fatalf("cannot decode vet config %s: %v", cfgPath, err)
	}
	// Always leave the output facts file behind: cmd/go caches it as
	// the unit's vet result. The suite exchanges no facts, so it is
	// empty — its existence is what matters.
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
				log.Fatal(err)
			}
		}
	}
	if cfg.VetxOnly {
		// Dependency-only unit: scheduled purely so downstream units
		// could read facts. Nothing to analyze.
		writeVetx()
		return
	}
	// Imports resolve import path -> package path (ImportMap: test
	// variants, vendoring) -> export data file (PackageFile). The gc
	// importer calls back with package paths for transitive
	// references, so the map carries both keyings.
	exports := map[string]string{}
	for pkgPath, file := range cfg.PackageFile {
		exports[pkgPath] = file
	}
	for impPath, pkgPath := range cfg.ImportMap {
		if file, ok := cfg.PackageFile[pkgPath]; ok {
			exports[impPath] = file
		}
	}
	u, err := analysis.CheckFiles(cfg.ImportPath, cfg.GoFiles, exports)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return
		}
		log.Fatal(err)
	}
	diags, err := analysis.Run(u, suite)
	if err != nil {
		log.Fatal(err)
	}
	writeVetx()
	report(map[string][]analysis.Diagnostic{cfg.ID: diags})
}

// runStandalone loads the patterns from the current module and sweeps
// them.
func runStandalone(patterns []string, suite []*analysis.Analyzer) {
	units, err := analysis.Load(".", patterns...)
	if err != nil {
		log.Print(err)
		os.Exit(2)
	}
	all := map[string][]analysis.Diagnostic{}
	for _, u := range units {
		diags, err := analysis.Run(u, suite)
		if err != nil {
			log.Print(err)
			os.Exit(2)
		}
		if len(diags) > 0 {
			all[u.ImportPath] = diags
		}
	}
	report(all)
}

// report prints findings (text to stderr, or -json to stdout) and
// exits 1 if there were any.
func report(byPkg map[string][]analysis.Diagnostic) {
	total := 0
	for _, diags := range byPkg {
		total += len(diags)
	}
	if *jsonFlag {
		// The same shape x/tools drivers emit: package -> analyzer ->
		// findings.
		type jsonDiag struct {
			Posn    string `json:"posn"`
			Message string `json:"message"`
		}
		tree := map[string]map[string][]jsonDiag{}
		for pkg, diags := range byPkg {
			t := map[string][]jsonDiag{}
			for _, d := range diags {
				t[d.Analyzer] = append(t[d.Analyzer], jsonDiag{Posn: d.Pos.String(), Message: d.Message})
			}
			tree[pkg] = t
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "\t")
		if err := enc.Encode(tree); err != nil {
			log.Fatal(err)
		}
	} else {
		for _, diags := range byPkg {
			for _, d := range diags {
				fmt.Fprintf(os.Stderr, "%s\n", d)
			}
		}
	}
	if total > 0 {
		os.Exit(1)
	}
}
