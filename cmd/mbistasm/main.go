// Command mbistasm assembles a march test algorithm for a programmable
// BIST architecture and prints the program listing — regenerating the
// paper's Fig. 2 (microcode) and Fig. 5 (FSM-based) for any algorithm.
//
// Usage:
//
//	mbistasm -arch microcode -alg marchc
//	mbistasm -arch fsm -alg marcha++
//	mbistasm -arch microcode -spec 'b(w0); u(r0,w1); d(r1,w0)'
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"repro/internal/fsmbist"
	"repro/internal/march"
	"repro/internal/microbist"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mbistasm: ")
	arch := flag.String("arch", "microcode", "target architecture: microcode or fsm")
	algName := flag.String("alg", "marchc", "library algorithm name")
	spec := flag.String("spec", "", "custom algorithm in march notation (overrides -alg)")
	word := flag.Bool("word", true, "emit the data-background loop (word-oriented memories)")
	multi := flag.Bool("multiport", true, "emit the port loop (multiport memories)")
	noFold := flag.Bool("nofold", false, "disable the Repeat symmetry fold (microcode only)")
	memb := flag.Int("memb", 0, "emit a $readmemb storage image with this many slots instead of a listing (microcode only)")
	list := flag.Bool("list", false, "list library algorithms and exit")
	flag.Parse()

	if *list {
		names := make([]string, 0)
		for name := range march.Library() {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, n := range names {
			a, _ := march.ByName(n)
			fmt.Printf("%-10s %2dN  %s\n", n, a.OpCount(), a)
		}
		return
	}

	var alg march.Algorithm
	var err error
	if *spec != "" {
		alg, err = march.Parse("custom", *spec)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		var ok bool
		alg, ok = march.ByName(*algName)
		if !ok {
			log.Fatalf("unknown algorithm %q (try -list)", *algName)
		}
	}

	switch *arch {
	case "microcode":
		p, err := microbist.Assemble(alg, microbist.AssembleOpts{
			WordOriented: *word, Multiport: *multi, DisableFold: *noFold,
		})
		if err != nil {
			log.Fatal(err)
		}
		if *memb > 0 {
			if err := p.WriteMemb(os.Stdout, *memb); err != nil {
				log.Fatal(err)
			}
			return
		}
		fmt.Printf("algorithm: %s = %s (%dN)\n\n", alg.Name, alg, alg.OpCount())
		fmt.Print(p.Listing())
	case "fsm":
		p, err := fsmbist.Compile(alg, fsmbist.CompileOpts{
			WordOriented: *word, Multiport: *multi,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("algorithm: %s = %s (%dN)\n\n", alg.Name, alg, alg.OpCount())
		fmt.Print(p.Listing())
		if p.Decomposed {
			fmt.Printf("\nnote: elements decomposed into SM components; realized algorithm:\n%s\n", p.Realized)
		}
	default:
		log.Fatalf("unknown architecture %q (want microcode or fsm)", *arch)
	}
}
