// Command mbistcov grades march algorithms against the functional
// fault universe and prints a coverage matrix (extension experiment X1
// of DESIGN.md).
//
// Usage:
//
//	mbistcov
//	mbistcov -algs marchc,marchc+,marchc++ -arch microcode -size 16
//	mbistcov -detail marchc
//	mbistcov -arch microcode -workers 4 -cpuprofile grade.pprof -metrics
//	mbistcov -engine scalar -detail marchc
//
// The observability flags -cpuprofile, -memprofile, -trace and
// -metrics profile a grading run; -metrics dumps the obs counter
// snapshot (per-worker fault throughput, settle counts, ...) to stderr
// at exit.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	mbist "repro"
	"repro/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mbistcov: ")
	algList := flag.String("algs", "mats+,marchx,marchy,marchc,marchc+,marchc++,marcha,marchb",
		"comma-separated library algorithms")
	archName := flag.String("arch", "reference", "architecture: reference, microcode, fsm, hardwired")
	size := flag.Int("size", 16, "memory addresses")
	width := flag.Int("width", 1, "word width in bits")
	ports := flag.Int("ports", 1, "memory ports")
	detail := flag.String("detail", "", "print the full per-kind report and missed faults for one algorithm")
	workers := flag.Int("workers", 0, "concurrent grading workers (0 = all CPUs, 1 = serial)")
	engineName := flag.String("engine", "auto", "fault-simulation engine: auto (lane-parallel stream replay with scalar fallback) or scalar (one fault at a time)")
	var prof obs.Flags
	prof.Register(flag.CommandLine)
	flag.Parse()

	stop, err := prof.Start()
	if err != nil {
		log.Fatal(err)
	}
	runErr := run(*algList, *archName, *size, *width, *ports, *detail, *workers, *engineName)
	if err := stop(); err != nil {
		log.Print(err)
	}
	if runErr != nil {
		log.Fatal(runErr)
	}
}

func run(algList, archName string, size, width, ports int, detail string, workers int, engineName string) error {
	arch, err := parseArch(archName)
	if err != nil {
		return err
	}
	engine, err := parseEngine(engineName)
	if err != nil {
		return err
	}
	opts := mbist.CoverageOptions{Size: size, Width: width, Ports: ports, Workers: workers, Engine: engine}

	if detail != "" {
		alg, ok := mbist.AlgorithmByName(detail)
		if !ok {
			return fmt.Errorf("unknown algorithm %q", detail)
		}
		rep, err := mbist.GradeCoverage(alg, arch, opts)
		if err != nil {
			return err
		}
		fmt.Print(rep)
		if len(rep.Missed) > 0 {
			fmt.Printf("missed faults (%d):\n", len(rep.Missed))
			for i, f := range rep.Missed {
				if i >= 40 {
					fmt.Printf("  ... %d more\n", len(rep.Missed)-40)
					break
				}
				fmt.Printf("  %v\n", f)
			}
		}
		return nil
	}

	var algs []mbist.Algorithm
	for _, name := range strings.Split(algList, ",") {
		alg, ok := mbist.AlgorithmByName(strings.TrimSpace(name))
		if !ok {
			return fmt.Errorf("unknown algorithm %q", name)
		}
		algs = append(algs, alg)
	}
	out, err := mbist.CoverageMatrix(algs, arch, opts)
	if err != nil {
		return err
	}
	fmt.Printf("fault coverage on %v (%d x %d bits, %d ports):\n\n%s",
		arch, size, width, ports, out)
	return nil
}

func parseArch(s string) (mbist.Architecture, error) {
	switch s {
	case "reference":
		return mbist.Reference, nil
	case "microcode":
		return mbist.Microcode, nil
	case "fsm":
		return mbist.ProgFSM, nil
	case "hardwired":
		return mbist.Hardwired, nil
	}
	return 0, fmt.Errorf("unknown architecture %q", s)
}

func parseEngine(s string) (mbist.CoverageEngine, error) {
	switch s {
	case "auto":
		return mbist.CoverageEngineAuto, nil
	case "scalar":
		return mbist.CoverageEngineScalar, nil
	}
	return 0, fmt.Errorf("unknown engine %q", s)
}
