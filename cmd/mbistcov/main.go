// Command mbistcov grades march algorithms against the functional
// fault universe and prints a coverage matrix (extension experiment X1
// of DESIGN.md).
//
// Usage:
//
//	mbistcov
//	mbistcov -algs marchc,marchc+,marchc++ -arch microcode -size 16
//	mbistcov -detail marchc
//	mbistcov -arch microcode -workers 4 -cpuprofile grade.pprof -metrics
//	mbistcov -engine scalar -detail marchc
//	mbistcov -lanes 512 -workers 4
//	mbistcov -size 1024 -width 8 -checkpoint state.json
//	mbistcov -size 1024 -width 8 -checkpoint state.json -resume
//	mbistcov -size 1024 -timeout 5m -checkpoint state.json
//	mbistcov -size 1024 -shard 0/4 -out shard0.json
//	mbistcov -size 1024 -merge shard0.json,shard1.json,shard2.json,shard3.json
//
// The observability flags -cpuprofile, -memprofile, -trace and
// -metrics profile a grading run; -metrics dumps the obs counter
// snapshot (per-worker fault throughput, settle counts, ...) to stderr
// at exit.
//
// Matrix-scale runs are interruptible: with -checkpoint, grading state
// is persisted atomically every -checkpoint-every faults and once more
// on SIGINT/SIGTERM, and -resume continues from the saved state to a
// report byte-identical to an uninterrupted run. The checkpoint file
// is versioned, checksummed and bound to the workload (algorithms,
// architecture, geometry, universe options), so a stale or tampered
// file is rejected instead of silently mis-resumed.
//
// Sweeps also shard: -shard i/N grades only the i-th contiguous slice
// of the fault universe and writes its state to -out; -merge combines
// a full shard set (graded anywhere — goroutines, processes, machines)
// and prints a matrix byte-identical to the unsharded run. Shard files
// reuse the checkpoint envelope, so a shard graded under different
// flags is rejected at merge.
//
// Exit codes:
//
//	0  success
//	1  grading or configuration error
//	2  flag parse error
//	3  interrupted by SIGINT/SIGTERM or the -timeout deadline (final
//	   checkpoint written when -checkpoint is set)
//	4  -resume checkpoint or -merge shard file is corrupt or belongs
//	   to a different workload
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	mbist "repro"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/sweep"
)

// Exit codes. 2 is taken by flag parsing.
const (
	exitOK          = 0
	exitError       = 1
	exitInterrupted = 3
	exitBadResume   = 4
)

// errInterrupted marks a run stopped by SIGINT/SIGTERM or the -timeout
// deadline after writing its final checkpoint.
var errInterrupted = errors.New("interrupted")

// cause distinguishes the two interruption sources in the exit-3
// message: a -timeout expiry versus an operator signal.
func cause(ctx context.Context) string {
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		return " (-timeout deadline exceeded)"
	}
	return ""
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("mbistcov: ")
	var spec sweep.Spec
	spec.Register(flag.CommandLine)
	detail := flag.String("detail", "", "print the full per-kind report and missed faults for one algorithm")
	ckptPath := flag.String("checkpoint", "", "persist grading state to this file (atomic rename-on-write)")
	ckptEvery := flag.Int("checkpoint-every", 0, "checkpoint cadence in graded faults (0 = default)")
	resume := flag.Bool("resume", false, "resume from the -checkpoint file if it exists")
	shardSpec := flag.String("shard", "", "grade one sweep slice i/N (e.g. 0/4) and write its state to -out")
	outPath := flag.String("out", "", "shard state output file for -shard")
	mergeList := flag.String("merge", "", "comma-separated shard files to merge into the final matrix")
	var prof obs.Flags
	prof.Register(flag.CommandLine)
	defaultUsage := flag.Usage
	flag.Usage = func() {
		defaultUsage()
		fmt.Fprint(flag.CommandLine.Output(), `
exit codes:
  0  success
  1  grading or configuration error
  2  flag parse error
  3  interrupted by SIGINT/SIGTERM or the -timeout deadline (final checkpoint written when -checkpoint is set)
  4  -resume checkpoint or -merge shard file is corrupt or belongs to a different workload
`)
	}
	flag.Parse()

	stop, err := prof.Start()
	if err != nil {
		log.Fatal(err)
	}
	runErr := run(spec, *detail, *ckptPath, *ckptEvery, *resume, *shardSpec, *outPath, *mergeList)
	if err := stop(); err != nil {
		log.Print(err)
	}
	switch {
	case runErr == nil:
		os.Exit(exitOK)
	case errors.Is(runErr, errInterrupted):
		log.Print(runErr)
		os.Exit(exitInterrupted)
	case errors.Is(runErr, resilience.ErrCorrupt), errors.Is(runErr, resilience.ErrMismatch):
		log.Print(runErr)
		os.Exit(exitBadResume)
	default:
		log.Print(runErr)
		os.Exit(exitError)
	}
}

// checkpointPayload is the mbistcov checkpoint body: one grading State
// per algorithm, keyed by name, in a fixed algorithm order. Algorithms
// graded to completion resume instantly (every fault already settled);
// the in-flight one resumes at its last persisted fault.
type checkpointPayload struct {
	Algs   []string                        `json:"algs"`
	States map[string]*mbist.CoverageState `json:"states"`
}

func run(spec sweep.Spec, detail, ckptPath string, ckptEvery int, resume bool, shardSpec, outPath, mergeList string) error {
	if detail != "" {
		spec.Algs = detail
	}
	spec.Algs = strings.TrimSpace(spec.Algs)
	w, err := spec.Workload()
	if err != nil {
		return err
	}
	w.Opts.CheckpointEvery = ckptEvery
	if resume && ckptPath == "" {
		return fmt.Errorf("-resume requires -checkpoint")
	}

	// Stop at the next fault boundary on SIGINT/SIGTERM; the grading
	// engines flush a final checkpoint before returning. A -timeout
	// deadline takes the same path: final checkpoint, exit 3.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	if timeout, err := spec.TimeoutDuration(); err != nil {
		return err
	} else if timeout > 0 {
		var tcancel context.CancelFunc
		ctx, tcancel = context.WithTimeout(ctx, timeout)
		defer tcancel()
	}

	switch {
	case shardSpec != "" && mergeList != "":
		return fmt.Errorf("-shard and -merge are mutually exclusive")
	case shardSpec != "":
		return runShard(ctx, w, shardSpec, outPath)
	case mergeList != "":
		return runMerge(w, mergeList)
	}

	reports, err := gradeAll(ctx, w, ckptPath, resume)
	if err != nil {
		return err
	}

	if detail != "" {
		rep := reports[0]
		fmt.Print(rep)
		if len(rep.Missed) > 0 {
			fmt.Printf("missed faults (%d):\n", len(rep.Missed))
			for i, f := range rep.Missed {
				if i >= 40 {
					fmt.Printf("  ... %d more\n", len(rep.Missed)-40)
					break
				}
				fmt.Printf("  %v\n", f)
			}
		}
		printQuarantine(rep)
		return nil
	}

	fmt.Print(w.RenderText(reports))
	for _, rep := range reports {
		printQuarantine(rep)
	}
	return nil
}

// gradeAll grades the whole workload with optional checkpoint/resume.
func gradeAll(ctx context.Context, w *sweep.Workload, ckptPath string, resume bool) ([]*mbist.CoverageReport, error) {
	// The workload fingerprint binds a checkpoint to this exact run;
	// worker count, engine and lanes are excluded — verdicts are
	// byte-identical across all three, so a checkpoint resumes under any.
	payload := checkpointPayload{Algs: w.Names(), States: make(map[string]*mbist.CoverageState)}
	fingerprint := w.Fingerprint()

	if resume {
		var prior checkpointPayload
		switch err := resilience.Load(ckptPath, fingerprint, &prior); {
		case errors.Is(err, os.ErrNotExist):
			log.Printf("no checkpoint at %s, starting fresh", ckptPath)
		case err != nil:
			return nil, err
		default:
			payload.States = prior.States
			if payload.States == nil {
				payload.States = make(map[string]*mbist.CoverageState)
			}
			done := 0
			for _, st := range payload.States {
				if st.Complete() {
					done++
				}
			}
			log.Printf("resuming from %s: %d/%d algorithms complete", ckptPath, done, len(w.Algs))
		}
	}

	var ckptErr error
	reports := make([]*mbist.CoverageReport, 0, len(w.Algs))
	for _, alg := range w.Algs {
		algOpts := w.Opts
		if st := payload.States[alg.Name]; st != nil {
			algOpts.Resume = st
		}
		if ckptPath != "" {
			name := alg.Name
			algOpts.Checkpoint = func(s *mbist.CoverageState) {
				payload.States[name] = s
				if err := resilience.Save(ckptPath, fingerprint, payload); err != nil {
					ckptErr = err
				}
			}
		}
		rep, err := mbist.GradeCoverageContext(ctx, alg, w.Arch, algOpts)
		if err != nil {
			if ctx.Err() != nil && rep != nil {
				if ckptErr != nil {
					return nil, fmt.Errorf("%w%s after %d/%d faults of %s; checkpoint write failed: %v",
						errInterrupted, cause(ctx), rep.Graded, rep.Universe, alg.Name, ckptErr)
				}
				if ckptPath != "" {
					return nil, fmt.Errorf("%w%s after %d/%d faults of %s; state saved to %s",
						errInterrupted, cause(ctx), rep.Graded, rep.Universe, alg.Name, ckptPath)
				}
				return nil, fmt.Errorf("%w%s after %d/%d faults of %s", errInterrupted, cause(ctx), rep.Graded, rep.Universe, alg.Name)
			}
			return nil, err
		}
		reports = append(reports, rep)
	}
	if ckptErr != nil {
		log.Printf("warning: checkpoint write failed: %v", ckptErr)
	}
	return reports, nil
}

// runShard grades one sweep slice and persists it to -out.
func runShard(ctx context.Context, w *sweep.Workload, shardSpec, outPath string) error {
	var shard, of int
	if n, err := fmt.Sscanf(shardSpec, "%d/%d", &shard, &of); n != 2 || err != nil {
		return fmt.Errorf("bad -shard %q, want i/N (e.g. 0/4)", shardSpec)
	}
	if outPath == "" {
		return fmt.Errorf("-shard requires -out")
	}
	s, err := w.GradeShard(ctx, shard, of)
	if err != nil {
		if ctx.Err() != nil {
			return fmt.Errorf("%w%s while grading shard %d/%d", errInterrupted, cause(ctx), shard, of)
		}
		return err
	}
	if err := w.SaveShard(outPath, s); err != nil {
		return err
	}
	log.Printf("shard %d/%d graded, state saved to %s", shard, of, outPath)
	return nil
}

// runMerge combines a full shard set and prints the final matrix,
// byte-identical to an unsharded run of the same workload.
func runMerge(w *sweep.Workload, mergeList string) error {
	var shards []*sweep.Shard
	for _, path := range strings.Split(mergeList, ",") {
		s, err := w.LoadShard(strings.TrimSpace(path))
		if err != nil {
			return err
		}
		shards = append(shards, s)
	}
	reports, err := w.Merge(shards...)
	if err != nil {
		return err
	}
	fmt.Print(w.RenderText(reports))
	for _, rep := range reports {
		printQuarantine(rep)
	}
	return nil
}

// printQuarantine surfaces quarantined faults so a poisoned workload
// cannot hide inside an otherwise clean matrix.
func printQuarantine(rep *mbist.CoverageReport) {
	if len(rep.Quarantined) == 0 {
		return
	}
	log.Printf("%s on %v: %d fault(s) quarantined (excluded from coverage):",
		rep.Algorithm, rep.Architecture, len(rep.Quarantined))
	for _, q := range rep.Quarantined {
		log.Printf("  #%d %s: %s", q.Index, q.Fault, q.Err)
	}
}
