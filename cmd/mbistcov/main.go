// Command mbistcov grades march algorithms against the functional
// fault universe and prints a coverage matrix (extension experiment X1
// of DESIGN.md).
//
// Usage:
//
//	mbistcov
//	mbistcov -algs marchc,marchc+,marchc++ -arch microcode -size 16
//	mbistcov -detail marchc
//	mbistcov -arch microcode -workers 4 -cpuprofile grade.pprof -metrics
//	mbistcov -engine scalar -detail marchc
//	mbistcov -lanes 512 -workers 4
//	mbistcov -size 1024 -width 8 -checkpoint state.json
//	mbistcov -size 1024 -width 8 -checkpoint state.json -resume
//
// The observability flags -cpuprofile, -memprofile, -trace and
// -metrics profile a grading run; -metrics dumps the obs counter
// snapshot (per-worker fault throughput, settle counts, ...) to stderr
// at exit.
//
// Matrix-scale runs are interruptible: with -checkpoint, grading state
// is persisted atomically every -checkpoint-every faults and once more
// on SIGINT/SIGTERM, and -resume continues from the saved state to a
// report byte-identical to an uninterrupted run. The checkpoint file
// is versioned, checksummed and bound to the workload (algorithms,
// architecture, geometry, universe options), so a stale or tampered
// file is rejected instead of silently mis-resumed.
//
// Exit codes:
//
//	0  success
//	1  grading or configuration error
//	2  flag parse error
//	3  interrupted by SIGINT/SIGTERM (final checkpoint written when
//	   -checkpoint is set)
//	4  -resume checkpoint is corrupt or belongs to a different workload
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"hash/crc32"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	mbist "repro"
	"repro/internal/obs"
	"repro/internal/resilience"
)

// Exit codes. 2 is taken by flag parsing.
const (
	exitOK          = 0
	exitError       = 1
	exitInterrupted = 3
	exitBadResume   = 4
)

// errInterrupted marks a run stopped by SIGINT/SIGTERM after writing
// its final checkpoint.
var errInterrupted = errors.New("interrupted")

func main() {
	log.SetFlags(0)
	log.SetPrefix("mbistcov: ")
	algList := flag.String("algs", "mats+,marchx,marchy,marchc,marchc+,marchc++,marcha,marchb",
		"comma-separated library algorithms")
	archName := flag.String("arch", "reference", "architecture: reference, microcode, fsm, hardwired")
	size := flag.Int("size", 16, "memory addresses")
	width := flag.Int("width", 1, "word width in bits")
	ports := flag.Int("ports", 1, "memory ports")
	detail := flag.String("detail", "", "print the full per-kind report and missed faults for one algorithm")
	workers := flag.Int("workers", 0, "concurrent grading workers (0 = all CPUs, 1 = serial)")
	engineName := flag.String("engine", "auto", "fault-simulation engine: auto (lane-parallel stream replay with scalar fallback) or scalar (one fault at a time)")
	lanesName := flag.String("lanes", "auto", "lane-engine batch width: auto, 64, 128, 256 or 512 logical fault lanes (ignored by -engine scalar; reports are byte-identical at every width)")
	ckptPath := flag.String("checkpoint", "", "persist grading state to this file (atomic rename-on-write)")
	ckptEvery := flag.Int("checkpoint-every", 0, "checkpoint cadence in graded faults (0 = default)")
	resume := flag.Bool("resume", false, "resume from the -checkpoint file if it exists")
	var prof obs.Flags
	prof.Register(flag.CommandLine)
	defaultUsage := flag.Usage
	flag.Usage = func() {
		defaultUsage()
		fmt.Fprint(flag.CommandLine.Output(), `
exit codes:
  0  success
  1  grading or configuration error
  2  flag parse error
  3  interrupted by SIGINT/SIGTERM (final checkpoint written when -checkpoint is set)
  4  -resume checkpoint is corrupt or belongs to a different workload
`)
	}
	flag.Parse()

	stop, err := prof.Start()
	if err != nil {
		log.Fatal(err)
	}
	runErr := run(*algList, *archName, *size, *width, *ports, *detail, *workers, *engineName, *lanesName,
		*ckptPath, *ckptEvery, *resume)
	if err := stop(); err != nil {
		log.Print(err)
	}
	switch {
	case runErr == nil:
		os.Exit(exitOK)
	case errors.Is(runErr, errInterrupted):
		log.Print(runErr)
		os.Exit(exitInterrupted)
	case errors.Is(runErr, resilience.ErrCorrupt), errors.Is(runErr, resilience.ErrMismatch):
		log.Print(runErr)
		os.Exit(exitBadResume)
	default:
		log.Print(runErr)
		os.Exit(exitError)
	}
}

// checkpointPayload is the mbistcov checkpoint body: one grading State
// per algorithm, keyed by name, in a fixed algorithm order. Algorithms
// graded to completion resume instantly (every fault already settled);
// the in-flight one resumes at its last persisted fault.
type checkpointPayload struct {
	Algs   []string                        `json:"algs"`
	States map[string]*mbist.CoverageState `json:"states"`
}

func run(algList, archName string, size, width, ports int, detail string, workers int, engineName, lanesName string,
	ckptPath string, ckptEvery int, resume bool) error {
	arch, err := parseArch(archName)
	if err != nil {
		return err
	}
	engine, err := parseEngine(engineName)
	if err != nil {
		return err
	}
	lanes, err := parseLanes(lanesName)
	if err != nil {
		return err
	}
	opts := mbist.CoverageOptions{
		Size: size, Width: width, Ports: ports, Workers: workers,
		Engine: engine, Lanes: lanes, CheckpointEvery: ckptEvery,
	}
	if resume && ckptPath == "" {
		return fmt.Errorf("-resume requires -checkpoint")
	}

	var algs []mbist.Algorithm
	if detail != "" {
		alg, ok := mbist.AlgorithmByName(detail)
		if !ok {
			return fmt.Errorf("unknown algorithm %q", detail)
		}
		algs = []mbist.Algorithm{alg}
	} else {
		for _, name := range strings.Split(algList, ",") {
			alg, ok := mbist.AlgorithmByName(strings.TrimSpace(name))
			if !ok {
				return fmt.Errorf("unknown algorithm %q", name)
			}
			algs = append(algs, alg)
		}
	}

	// The workload fingerprint binds a checkpoint to this exact run: a
	// readable architecture/geometry/algorithm summary plus a checksum
	// of the per-algorithm fingerprints (which fold in the universe
	// options and each algorithm's march notation) in grading order.
	// Worker count and engine are excluded — verdicts are byte-identical
	// across both, so a checkpoint resumes under either.
	payload := checkpointPayload{States: make(map[string]*mbist.CoverageState)}
	var fps []string
	for _, alg := range algs {
		payload.Algs = append(payload.Algs, alg.Name)
		fps = append(fps, mbist.CoverageFingerprint(alg, arch, opts))
	}
	fingerprint := fmt.Sprintf("%v %dx%d/%d algs[%s] %08x",
		arch, opts.Size, opts.Width, opts.Ports,
		strings.Join(payload.Algs, ","),
		crc32.ChecksumIEEE([]byte(strings.Join(fps, ";"))))

	if resume {
		var prior checkpointPayload
		switch err := resilience.Load(ckptPath, fingerprint, &prior); {
		case errors.Is(err, os.ErrNotExist):
			log.Printf("no checkpoint at %s, starting fresh", ckptPath)
		case err != nil:
			return err
		default:
			payload.States = prior.States
			if payload.States == nil {
				payload.States = make(map[string]*mbist.CoverageState)
			}
			done := 0
			for _, st := range payload.States {
				if st.Complete() {
					done++
				}
			}
			log.Printf("resuming from %s: %d/%d algorithms complete", ckptPath, done, len(algs))
		}
	}

	// Stop at the next fault boundary on SIGINT/SIGTERM; the grading
	// engines flush a final checkpoint before returning.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	var ckptErr error
	reports := make([]*mbist.CoverageReport, 0, len(algs))
	for _, alg := range algs {
		algOpts := opts
		if st := payload.States[alg.Name]; st != nil {
			algOpts.Resume = st
		}
		if ckptPath != "" {
			name := alg.Name
			algOpts.Checkpoint = func(s *mbist.CoverageState) {
				payload.States[name] = s
				if err := resilience.Save(ckptPath, fingerprint, payload); err != nil {
					ckptErr = err
				}
			}
		}
		rep, err := mbist.GradeCoverageContext(ctx, alg, arch, algOpts)
		if err != nil {
			if ctx.Err() != nil && rep != nil {
				if ckptErr != nil {
					return fmt.Errorf("%w after %d/%d faults of %s; checkpoint write failed: %v",
						errInterrupted, rep.Graded, rep.Universe, alg.Name, ckptErr)
				}
				if ckptPath != "" {
					return fmt.Errorf("%w after %d/%d faults of %s; state saved to %s",
						errInterrupted, rep.Graded, rep.Universe, alg.Name, ckptPath)
				}
				return fmt.Errorf("%w after %d/%d faults of %s", errInterrupted, rep.Graded, rep.Universe, alg.Name)
			}
			return err
		}
		reports = append(reports, rep)
	}
	if ckptErr != nil {
		log.Printf("warning: checkpoint write failed: %v", ckptErr)
	}

	if detail != "" {
		rep := reports[0]
		fmt.Print(rep)
		if len(rep.Missed) > 0 {
			fmt.Printf("missed faults (%d):\n", len(rep.Missed))
			for i, f := range rep.Missed {
				if i >= 40 {
					fmt.Printf("  ... %d more\n", len(rep.Missed)-40)
					break
				}
				fmt.Printf("  %v\n", f)
			}
		}
		printQuarantine(rep)
		return nil
	}

	fmt.Printf("fault coverage on %v (%d x %d bits, %d ports):\n\n%s",
		arch, size, width, ports, mbist.RenderCoverageMatrix(reports))
	for _, rep := range reports {
		printQuarantine(rep)
	}
	return nil
}

// printQuarantine surfaces quarantined faults so a poisoned workload
// cannot hide inside an otherwise clean matrix.
func printQuarantine(rep *mbist.CoverageReport) {
	if len(rep.Quarantined) == 0 {
		return
	}
	log.Printf("%s on %v: %d fault(s) quarantined (excluded from coverage):",
		rep.Algorithm, rep.Architecture, len(rep.Quarantined))
	for _, q := range rep.Quarantined {
		log.Printf("  #%d %s: %s", q.Index, q.Fault, q.Err)
	}
}

func parseArch(s string) (mbist.Architecture, error) {
	switch s {
	case "reference":
		return mbist.Reference, nil
	case "microcode":
		return mbist.Microcode, nil
	case "fsm":
		return mbist.ProgFSM, nil
	case "hardwired":
		return mbist.Hardwired, nil
	}
	return 0, fmt.Errorf("unknown architecture %q", s)
}

func parseEngine(s string) (mbist.CoverageEngine, error) {
	switch s {
	case "auto":
		return mbist.CoverageEngineAuto, nil
	case "scalar":
		return mbist.CoverageEngineScalar, nil
	}
	return 0, fmt.Errorf("unknown engine %q", s)
}

// parseLanes maps the -lanes flag to CoverageOptions.Lanes: "auto" (or
// empty) defers to the library default, otherwise the value must be a
// supported logical lane width.
func parseLanes(s string) (int, error) {
	switch s {
	case "auto", "":
		return 0, nil
	case "64":
		return 64, nil
	case "128":
		return 128, nil
	case "256":
		return 256, nil
	case "512":
		return 512, nil
	}
	return 0, fmt.Errorf("unknown lane width %q (want auto, 64, 128, 256 or 512)", s)
}
