// Command mbistd serves the MBIST workloads over HTTP: coverage
// grading (optionally sharded), full-matrix lint, program assembly and
// area evaluation run as jobs on a bounded worker pool, with streamed
// progress and an obs metrics endpoint.
//
// Usage:
//
//	mbistd                      # listen on :8347
//	mbistd -addr 127.0.0.1:9000 -grade-workers 4 -queue 128
//
// API (see internal/serve):
//
//	POST /v1/jobs              submit {"kind":"grade","grade":{...}}
//	GET  /v1/jobs/{id}         job status
//	GET  /v1/jobs/{id}/report  result text, byte-identical to the CLIs
//	GET  /v1/jobs/{id}/watch   streamed progress lines
//	GET  /v1/metrics           obs counter snapshot (?format=json)
//	GET  /v1/healthz           liveness + queue depth
//
// On SIGINT/SIGTERM the server drains gracefully: the listener closes,
// new submissions get 503, queued and running jobs finish (bounded by
// -drain-timeout), then the process exits 0. A drain that times out
// cancels the remaining jobs and exits 1.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mbistd: ")
	addr := flag.String("addr", ":8347", "listen address")
	workers := flag.Int("grade-workers", 0, "concurrent jobs (0 = 2)")
	queue := flag.Int("queue", 0, "queued-job bound (0 = 64)")
	drainTimeout := flag.Duration("drain-timeout", 2*time.Minute, "max time to finish jobs on shutdown")
	flag.Parse()

	// The service registry backs /v1/metrics and the artifact-cache
	// hit/build counters the e2e lane asserts on.
	obs.Enable()

	s := serve.New(serve.Options{Workers: *workers, Queue: *queue})
	httpSrv := &http.Server{Addr: *addr, Handler: s.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("listening on %s", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}

	log.Print("shutting down: draining jobs")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := s.Drain(drainCtx); err != nil {
		log.Fatalf("drain: %v (remaining jobs cancelled)", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	log.Print("drained cleanly")
}
