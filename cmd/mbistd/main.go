// Command mbistd serves the MBIST workloads over HTTP: coverage
// grading (optionally sharded), full-matrix lint, program assembly and
// area evaluation run as jobs on a bounded worker pool, with streamed
// progress and an obs metrics endpoint.
//
// Usage:
//
//	mbistd                      # listen on :8347, in-memory job store
//	mbistd -journal-dir /var/lib/mbistd   # durable job store
//	mbistd -addr 127.0.0.1:9000 -grade-workers 4 -queue 128
//
// API (see internal/serve):
//
//	POST /v1/jobs              submit {"kind":"grade","grade":{...}}
//	GET  /v1/jobs/{id}         job status
//	GET  /v1/jobs/{id}/report  result text, byte-identical to the CLIs
//	GET  /v1/jobs/{id}/watch   streamed progress lines
//	GET  /v1/metrics           obs counter snapshot (?format=json)
//	GET  /v1/healthz           liveness + queue depth + journal info
//
// HTTP status codes:
//
//	202  job accepted
//	200  idempotency-key replay (existing job returned, not re-run)
//	400  invalid request (unknown kind/algorithm/architecture, bad timeout)
//	404  unknown job ID
//	409  report requested before the job is done
//	500  report of a failed or quarantined job
//	503  draining or queue full; Retry-After header and JSON body
//	     {"error":..., "code":"draining"|"saturated", "retry_after_seconds":N}
//
// With -journal-dir every job state transition is journaled
// (fsync-per-record) and replayed on restart: finished jobs keep
// serving their reports, interrupted jobs resume from their last
// coverage checkpoint with byte-identical final reports.
//
// On SIGINT/SIGTERM the server drains gracefully: the listener closes,
// new submissions get 503, queued and running jobs finish (bounded by
// -drain-timeout), then the process exits 0.
//
// Exit codes:
//
//	0  clean shutdown (drained)
//	1  runtime error (listen failure, HTTP server error)
//	2  flag misuse
//	3  drain timeout: remaining jobs were cancelled (journaled jobs
//	   resume on the next start against the same -journal-dir)
//	4  corrupt or foreign journal: refused to start rather than guess
//	   at a job log that failed CRC/fingerprint verification
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/serve"
)

const (
	exitRuntime      = 1
	exitDrainTimeout = 3
	exitBadJournal   = 4
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mbistd: ")
	addr := flag.String("addr", ":8347", "listen address")
	workers := flag.Int("grade-workers", 0, "concurrent jobs (0 = 2)")
	queue := flag.Int("queue", 0, "queued-job bound (0 = 64)")
	drainTimeout := flag.Duration("drain-timeout", 2*time.Minute, "max time to finish jobs on shutdown")
	journalDir := flag.String("journal-dir", "", "durable job store directory; empty keeps jobs in memory only")
	ckptEvery := flag.Int("checkpoint-every", 0, "grade-job checkpoint cadence in graded faults (0 = 2048)")
	watchdog := flag.Duration("watchdog", 0, "fail a running job with no checkpoint progress for this long (0 = off)")
	retries := flag.Int("retries", 0, "default transient-failure retry budget per job (0 = 2, negative = never; requests override via spec retries)")
	retryBase := flag.Duration("retry-base", 0, "backoff base delay between retries (0 = 100ms)")
	retryCap := flag.Duration("retry-cap", 0, "backoff delay cap (0 = 5s)")
	retrySeed := flag.Int64("retry-seed", 0, "seed for the retry backoff jitter (deterministic schedules)")
	crashAfter := flag.Int("chaos-crash-after-checkpoints", 0, "chaos harness: SIGKILL this process after the Nth checkpointed journal record (0 = off; requires -journal-dir)")
	flag.Parse()

	// The service registry backs /v1/metrics and the artifact-cache
	// hit/build counters the e2e lane asserts on.
	obs.Enable()

	s, err := serve.New(serve.Options{
		Workers:               *workers,
		Queue:                 *queue,
		JournalDir:            *journalDir,
		CheckpointEvery:       *ckptEvery,
		Watchdog:              *watchdog,
		RetryMax:              *retries,
		RetryBase:             *retryBase,
		RetryCap:              *retryCap,
		RetrySeed:             *retrySeed,
		CrashAfterCheckpoints: *crashAfter,
	})
	if err != nil {
		log.Print(err)
		if errors.Is(err, resilience.ErrCorrupt) || errors.Is(err, resilience.ErrMismatch) {
			fmt.Fprintln(os.Stderr, "mbistd: refusing to start on an untrusted journal; inspect or move it aside to start fresh")
			os.Exit(exitBadJournal)
		}
		os.Exit(exitRuntime)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: s.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("listening on %s", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Print(err)
		os.Exit(exitRuntime)
	case <-ctx.Done():
	}

	log.Print("shutting down: draining jobs")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := s.Drain(drainCtx); err != nil {
		log.Printf("drain: %v (remaining jobs cancelled; journaled jobs resume on restart)", err)
		os.Exit(exitDrainTimeout)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Print(err)
		os.Exit(exitRuntime)
	}
	log.Print("drained cleanly")
}
