// Command mbistlint statically verifies the synthesised BIST matrix:
// netlist design-rule checks (combinational loops, undriven and
// multiply-driven nets, dead logic, frozen state), microcode
// control-flow and bounded-termination analysis, and march algorithm
// well-formedness — with no simulation involved.
//
// Usage:
//
//	mbistlint
//	mbistlint -algs marchc,marchc+ -arch hardwired
//	mbistlint -format json > lint.json
//
// The exit status is non-zero when any finding of error severity is
// reported, so the command gates CI.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	mbist "repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mbistlint: ")
	algList := flag.String("algs", "", "comma-separated library algorithms (empty = whole library)")
	archName := flag.String("arch", "", "restrict to one architecture: microcode, microcode-scan, fsm, hardwired (empty = all)")
	format := flag.String("format", "text", "report format: text or json")
	timer := flag.Int("timer", 8, "retention delay timer bits for algorithms with pauses")
	flag.Parse()

	rep, err := run(*algList, *archName, *format, *timer)
	if err != nil {
		log.Fatal(err)
	}
	if rep.HasErrors() {
		os.Exit(1)
	}
}

func run(algList, archName, format string, timer int) (*mbist.LintReport, error) {
	opts := mbist.LintOptions{DelayTimerBits: timer}
	if algList != "" {
		for _, name := range strings.Split(algList, ",") {
			opts.Algorithms = append(opts.Algorithms, strings.TrimSpace(name))
		}
	}
	if archName != "" {
		arch, err := parseArch(archName)
		if err != nil {
			return nil, err
		}
		opts.Archs = []mbist.LintArch{arch}
	}

	rep, err := mbist.Lint(opts)
	if err != nil {
		return nil, err
	}
	switch format {
	case "text":
		fmt.Print(rep.Text())
	case "json":
		b, err := rep.JSON()
		if err != nil {
			return nil, err
		}
		os.Stdout.Write(b)
	default:
		return nil, fmt.Errorf("unknown format %q", format)
	}
	return rep, nil
}

func parseArch(s string) (mbist.LintArch, error) {
	switch s {
	case "microcode":
		return mbist.LintMicrocode, nil
	case "microcode-scan":
		return mbist.LintMicrocodeScan, nil
	case "fsm":
		return mbist.LintProgFSM, nil
	case "hardwired":
		return mbist.LintHardwired, nil
	}
	return 0, fmt.Errorf("unknown architecture %q", s)
}
