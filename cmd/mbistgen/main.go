// Command mbistgen generates synthesisable structural Verilog for a
// BIST controller — the artefact a DFT flow would actually integrate.
//
// Usage:
//
//	mbistgen -arch microcode -alg marchc -o controller.v
//	mbistgen -arch microcode -scanonly -datapath
//	mbistgen -arch fsm -alg marcha
//	mbistgen -arch hardwired -alg marchc+
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/fsmbist"
	"repro/internal/hardbist"
	"repro/internal/march"
	"repro/internal/microbist"
	"repro/internal/netlist"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mbistgen: ")
	arch := flag.String("arch", "microcode", "architecture: microcode, fsm, hardwired")
	algName := flag.String("alg", "marchc", "library algorithm (program contents / hardwired behaviour)")
	out := flag.String("o", "", "output file (default stdout)")
	addrBits := flag.Int("addrbits", 10, "address generator width")
	width := flag.Int("width", 1, "memory word width")
	ports := flag.Int("ports", 1, "memory ports")
	scanOnly := flag.Bool("scanonly", false, "scan-only microcode storage (Table 3 re-design)")
	datapath := flag.Bool("datapath", false, "include the shared datapath")
	stats := flag.Bool("stats", true, "print area statistics to stderr")
	flag.Parse()

	alg, ok := march.ByName(*algName)
	if !ok {
		log.Fatalf("unknown algorithm %q", *algName)
	}
	word := *width > 1
	multi := *ports > 1

	var nl *netlist.Netlist
	switch *arch {
	case "microcode":
		p, err := microbist.Assemble(alg, microbist.AssembleOpts{WordOriented: word, Multiport: multi})
		if err != nil {
			log.Fatal(err)
		}
		hw, err := microbist.BuildHardware(p, microbist.HWConfig{
			AddrBits: *addrBits, Width: *width, Ports: *ports,
			ScanOnlyStorage: *scanOnly, IncludeDatapath: *datapath,
		})
		if err != nil {
			log.Fatal(err)
		}
		nl = hw.Netlist
	case "fsm":
		p, err := fsmbist.Compile(alg, fsmbist.CompileOpts{WordOriented: word, Multiport: multi})
		if err != nil {
			log.Fatal(err)
		}
		hw, err := fsmbist.BuildHardware(p, fsmbist.HWConfig{
			AddrBits: *addrBits, Width: *width, Ports: *ports, IncludeDatapath: *datapath,
		})
		if err != nil {
			log.Fatal(err)
		}
		nl = hw.Netlist
	case "hardwired":
		c, err := hardbist.Generate(alg, hardbist.Config{
			WordOriented: word, Multiport: multi,
			AddrBits: *addrBits, Width: *width, Ports: *ports, IncludeDatapath: *datapath,
		})
		if err != nil {
			log.Fatal(err)
		}
		nl, err = c.Synthesise()
		if err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatalf("unknown architecture %q", *arch)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := nl.WriteVerilog(w); err != nil {
		log.Fatal(err)
	}
	if *stats {
		s := nl.StatsFor(&netlist.CMOS5SLike)
		fmt.Fprintf(os.Stderr, "%s\n", s)
	}
}
