package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"testing"
)

// Schema identifies the machine-readable benchmark report format. Bump
// on incompatible changes; the loader keeps accepting older snapshots
// as long as they carry benchmarks.{name}.ns_per_op (the hand-rolled
// pre-schema BENCH_pr1.json already does).
const Schema = "mbist-bench/2"

// Entry is one benchmark's measurement.
type Entry struct {
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Iterations  int                `json:"iterations,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// Report is the schema-versioned benchmark snapshot BENCH_pr*.json
// files carry from PR 2 on.
type Report struct {
	Schema     string             `json:"schema"`
	Generated  string             `json:"generated"`
	Go         string             `json:"go"`
	Host       string             `json:"host"`
	Benchtime  string             `json:"benchtime"`
	Benchmarks map[string]Entry   `json:"benchmarks"`
	Speedups   map[string]float64 `json:"speedups,omitempty"`
}

// AddResult records one testing.Benchmark result.
func (r *Report) AddResult(name string, br testing.BenchmarkResult) {
	e := Entry{
		NsPerOp:     float64(br.NsPerOp()),
		BytesPerOp:  br.AllocedBytesPerOp(),
		AllocsPerOp: br.AllocsPerOp(),
		Iterations:  br.N,
	}
	if len(br.Extra) > 0 {
		e.Extra = make(map[string]float64, len(br.Extra))
		for k, v := range br.Extra {
			e.Extra[k] = v
		}
	}
	r.Benchmarks[name] = e
}

// WriteFile writes the report as indented JSON.
func (r *Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadBaseline reads the benchmarks map of a BENCH_*.json in either
// the schema-versioned format or the PR-1 hand-rolled one — both carry
// benchmarks.{name}.ns_per_op, which is all the gate compares.
func LoadBaseline(path string) (map[string]Entry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("baseline %s carries no benchmarks", path)
	}
	return rep.Benchmarks, nil
}

// Regression is one benchmark metric that exceeded the tolerated
// growth: Metric is "ns_per_op" or "allocs_per_op".
type Regression struct {
	Name     string
	Metric   string
	Baseline float64
	Current  float64
	Ratio    float64
}

// Gate compares current measurements against a baseline: a benchmark
// regresses when current/baseline ns/op exceeds tolerance, and — with
// the same tolerance — when its allocations per op grow past the
// baseline's (only for baselines that record a positive allocs_per_op;
// an alloc-free baseline entry of 0 cannot form a ratio and older
// snapshots may predate alloc tracking). Benchmarks missing from
// either side are skipped (baselines predating a new benchmark stay
// usable). Returns the regressions and the names compared, both sorted
// by name for deterministic output.
func Gate(current, baseline map[string]Entry, tolerance float64) (regressions []Regression, compared []string) {
	names := make([]string, 0, len(current))
	for name := range current {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		base, ok := baseline[name]
		if !ok || base.NsPerOp <= 0 {
			continue
		}
		compared = append(compared, name)
		ratio := current[name].NsPerOp / base.NsPerOp
		if ratio > tolerance {
			regressions = append(regressions, Regression{
				Name:     name,
				Metric:   "ns_per_op",
				Baseline: base.NsPerOp,
				Current:  current[name].NsPerOp,
				Ratio:    ratio,
			})
		}
		if base.AllocsPerOp > 0 {
			aratio := float64(current[name].AllocsPerOp) / float64(base.AllocsPerOp)
			if aratio > tolerance {
				regressions = append(regressions, Regression{
					Name:     name,
					Metric:   "allocs_per_op",
					Baseline: float64(base.AllocsPerOp),
					Current:  float64(current[name].AllocsPerOp),
					Ratio:    aratio,
				})
			}
		}
	}
	return regressions, compared
}
