// Command mbistbench measures the tracked benchmark suite (the paired
// Serial/Parallel fault-simulation fast paths defined in
// internal/benchsuite) via testing.Benchmark, emits a schema-versioned
// machine-readable snapshot, and gates against a baseline snapshot —
// the binary CI's bench-regression job runs on every pull request.
//
// Usage:
//
//	mbistbench                                   # measure, print, no gate
//	mbistbench -out BENCH_pr2.json               # regenerate the snapshot
//	mbistbench -baseline BENCH_pr1.json          # gate at the default 1.30x
//	mbistbench -baseline BENCH_pr1.json -tolerance 1.15 -bench LogicBIST
//
// Exit status is non-zero when any tracked benchmark's ns/op exceeds
// baseline × tolerance, or when the baseline shares no benchmarks with
// the suite (a mis-pointed baseline must not silently pass).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"regexp"
	"runtime"
	"runtime/pprof"
	"testing"
	"time"

	"repro/internal/benchsuite"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mbistbench: ")
	testing.Init() // registers test.* flags so -benchtime can be forwarded
	baselinePath := flag.String("baseline", "", "baseline BENCH_*.json to gate against (empty = measure only)")
	tolerance := flag.Float64("tolerance", 1.30, "allowed current/baseline ns-per-op ratio before failing")
	out := flag.String("out", "", "write the measurements to this JSON file")
	benchtime := flag.String("benchtime", "1s", "per-benchmark measuring budget, testing syntax (e.g. 2s, 20x)")
	repeat := flag.Int("repeat", 3, "measure each benchmark this many times and keep the fastest (noise robustness)")
	benchRE := flag.String("bench", "", "only run tracked benchmarks matching this regexp")
	list := flag.Bool("list", false, "list the tracked benchmarks and exit")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile covering every measured run to this file")
	flag.Parse()

	suite := benchsuite.Suite()
	if *list {
		for _, c := range suite {
			fmt.Println(c.Name)
		}
		return
	}

	var filter *regexp.Regexp
	if *benchRE != "" {
		var err error
		if filter, err = regexp.Compile(*benchRE); err != nil {
			log.Fatalf("bad -bench regexp: %v", err)
		}
	}
	if err := flag.Set("test.benchtime", *benchtime); err != nil {
		log.Fatalf("bad -benchtime %q: %v", *benchtime, err)
	}
	// The profile brackets the measurement loop only and is stopped
	// explicitly (not deferred): the gate below exits the process on a
	// regression, and the profile of the run that regressed is exactly
	// the artifact worth keeping.
	stopProfile := func() {}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("start CPU profile: %v", err)
		}
		stopProfile = func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(os.Stderr, "wrote CPU profile %s\n", *cpuprofile)
		}
	}

	report := &Report{
		Schema:     Schema,
		Generated:  time.Now().UTC().Format(time.RFC3339),
		Go:         runtime.Version(),
		Host:       fmt.Sprintf("%s/%s, %d CPU", runtime.GOOS, runtime.GOARCH, runtime.NumCPU()),
		Benchtime:  *benchtime,
		Benchmarks: make(map[string]Entry),
	}
	if *repeat < 1 {
		*repeat = 1
	}
	for _, c := range suite {
		if filter != nil && !filter.MatchString(c.Name) {
			continue
		}
		fmt.Fprintf(os.Stderr, "running %s (benchtime %s, best of %d)\n", c.Name, *benchtime, *repeat)
		// Shared-runner CPU speed fluctuates on multi-second scales;
		// the minimum over repetitions is the robust per-op estimate
		// (slowdowns are one-sided noise).
		var best testing.BenchmarkResult
		for rep := 0; rep < *repeat; rep++ {
			br := testing.Benchmark(c.F)
			if br.N == 0 {
				log.Fatalf("%s failed to run", c.Name)
			}
			if rep == 0 || br.NsPerOp() < best.NsPerOp() {
				best = br
			}
		}
		fmt.Printf("%-34s %12d ns/op %8d allocs/op  (best of %d, %d iterations)\n",
			c.Name, best.NsPerOp(), best.AllocsPerOp(), *repeat, best.N)
		report.AddResult(c.Name, best)
	}
	stopProfile()
	if len(report.Benchmarks) == 0 {
		log.Fatalf("-bench %q matched no tracked benchmark", *benchRE)
	}

	report.Speedups = speedups(suite, report.Benchmarks)
	for name, s := range report.Speedups {
		fmt.Printf("%-34s %12.2fx\n", name, s)
	}

	if *out != "" {
		if err := report.WriteFile(*out); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	}

	if *baselinePath == "" {
		return
	}
	baseline, err := LoadBaseline(*baselinePath)
	if err != nil {
		log.Fatal(err)
	}
	regressions, compared := Gate(report.Benchmarks, baseline, *tolerance)
	if len(compared) == 0 {
		log.Fatalf("baseline %s shares no benchmarks with the tracked suite", *baselinePath)
	}
	fmt.Printf("gate: %d benchmark(s) vs %s at tolerance %.2fx\n",
		len(compared), *baselinePath, *tolerance)
	for _, name := range compared {
		fmt.Printf("  %-32s baseline %12.0f ns/op  current %12.0f ns/op  ratio %.2fx\n",
			name, baseline[name].NsPerOp, report.Benchmarks[name].NsPerOp,
			report.Benchmarks[name].NsPerOp/baseline[name].NsPerOp)
	}
	if len(regressions) > 0 {
		for _, r := range regressions {
			fmt.Printf("REGRESSION %s %s: %.0f -> %.0f (%.2fx > %.2fx tolerance)\n",
				r.Name, r.Metric, r.Baseline, r.Current, r.Ratio, *tolerance)
		}
		os.Exit(1)
	}
	fmt.Println("gate: PASS")
}

// speedups derives the parallel-vs-serial ratios for the paired cases
// that were actually measured.
func speedups(suite []benchsuite.Case, measured map[string]Entry) map[string]float64 {
	out := make(map[string]float64)
	for _, c := range suite {
		if c.Serial == "" {
			continue
		}
		par, okP := measured[c.Name]
		ser, okS := measured[c.Serial]
		if !okP || !okS || par.NsPerOp <= 0 {
			continue
		}
		out[c.Name+"_vs_"+c.Serial] = ser.NsPerOp / par.NsPerOp
	}
	if len(out) == 0 {
		return nil
	}
	return out
}
