package main

import (
	"os"
	"path/filepath"
	"testing"
)

func suiteEntries(ns float64) map[string]Entry {
	return map[string]Entry{
		"BenchmarkLogicBISTSerial":       {NsPerOp: 40 * ns},
		"BenchmarkLogicBISTWordParallel": {NsPerOp: ns},
		"BenchmarkGradeSerial":           {NsPerOp: 2 * ns},
		"BenchmarkGradeParallel":         {NsPerOp: 2 * ns},
	}
}

func TestGateEqualBaselinePasses(t *testing.T) {
	cur := suiteEntries(1e6)
	regs, compared := Gate(cur, suiteEntries(1e6), 1.30)
	if len(regs) != 0 {
		t.Errorf("equal baseline produced regressions: %v", regs)
	}
	if len(compared) != len(cur) {
		t.Errorf("compared %d benchmarks, want %d", len(compared), len(cur))
	}
}

// TestGateFlagsInjectedSlowdown is the acceptance scenario: a baseline
// whose entry is artificially 2x faster than the current measurement
// must trip the gate.
func TestGateFlagsInjectedSlowdown(t *testing.T) {
	cur := suiteEntries(1e6)
	base := suiteEntries(1e6)
	fast := base["BenchmarkGradeParallel"]
	fast.NsPerOp /= 2
	base["BenchmarkGradeParallel"] = fast

	regs, _ := Gate(cur, base, 1.30)
	if len(regs) != 1 {
		t.Fatalf("got %d regressions, want exactly 1: %v", len(regs), regs)
	}
	if regs[0].Name != "BenchmarkGradeParallel" || regs[0].Ratio < 1.99 || regs[0].Ratio > 2.01 {
		t.Errorf("regression = %+v, want BenchmarkGradeParallel at ~2.0x", regs[0])
	}
}

func TestGateToleranceBoundary(t *testing.T) {
	base := map[string]Entry{"B": {NsPerOp: 100}}
	if regs, _ := Gate(map[string]Entry{"B": {NsPerOp: 130}}, base, 1.30); len(regs) != 0 {
		t.Errorf("ratio exactly at tolerance regressed: %v", regs)
	}
	if regs, _ := Gate(map[string]Entry{"B": {NsPerOp: 131}}, base, 1.30); len(regs) != 1 {
		t.Errorf("ratio above tolerance passed")
	}
	// Speedups never trip the gate.
	if regs, _ := Gate(map[string]Entry{"B": {NsPerOp: 10}}, base, 1.30); len(regs) != 0 {
		t.Errorf("speedup flagged as regression: %v", regs)
	}
}

// TestGateFlagsAllocRegression pins the allocs_per_op gate: growth past
// tolerance trips it, growth within tolerance and alloc-free baselines
// do not.
func TestGateFlagsAllocRegression(t *testing.T) {
	base := map[string]Entry{"B": {NsPerOp: 100, AllocsPerOp: 10}}
	regs, _ := Gate(map[string]Entry{"B": {NsPerOp: 100, AllocsPerOp: 14}}, base, 1.30)
	if len(regs) != 1 {
		t.Fatalf("got %d regressions, want 1: %v", len(regs), regs)
	}
	if regs[0].Metric != "allocs_per_op" || regs[0].Baseline != 10 || regs[0].Current != 14 {
		t.Errorf("regression = %+v, want allocs_per_op 10 -> 14", regs[0])
	}
	if regs, _ := Gate(map[string]Entry{"B": {NsPerOp: 100, AllocsPerOp: 13}}, base, 1.30); len(regs) != 0 {
		t.Errorf("allocs within tolerance regressed: %v", regs)
	}
	// A baseline without positive allocs cannot form a ratio — skipped.
	zero := map[string]Entry{"B": {NsPerOp: 100, AllocsPerOp: 0}}
	if regs, _ := Gate(map[string]Entry{"B": {NsPerOp: 100, AllocsPerOp: 1000}}, zero, 1.30); len(regs) != 0 {
		t.Errorf("alloc-free baseline gated allocs: %v", regs)
	}
}

// TestGateReportsBothMetrics checks one benchmark can regress on time
// and allocations at once.
func TestGateReportsBothMetrics(t *testing.T) {
	base := map[string]Entry{"B": {NsPerOp: 100, AllocsPerOp: 10}}
	regs, _ := Gate(map[string]Entry{"B": {NsPerOp: 200, AllocsPerOp: 20}}, base, 1.30)
	if len(regs) != 2 {
		t.Fatalf("got %d regressions, want 2: %v", len(regs), regs)
	}
	if regs[0].Metric != "ns_per_op" || regs[1].Metric != "allocs_per_op" {
		t.Errorf("metrics = %s, %s", regs[0].Metric, regs[1].Metric)
	}
}

func TestGateSkipsUnsharedBenchmarks(t *testing.T) {
	cur := map[string]Entry{"OnlyCurrent": {NsPerOp: 1}, "Shared": {NsPerOp: 1}}
	base := map[string]Entry{"OnlyBaseline": {NsPerOp: 1}, "Shared": {NsPerOp: 1}}
	regs, compared := Gate(cur, base, 1.30)
	if len(regs) != 0 || len(compared) != 1 || compared[0] != "Shared" {
		t.Errorf("Gate = (%v, %v), want no regressions and only Shared compared", regs, compared)
	}
	if _, compared := Gate(cur, map[string]Entry{"Other": {NsPerOp: 1}}, 1.30); len(compared) != 0 {
		t.Errorf("disjoint baseline compared %v, want nothing", compared)
	}
}

// TestLoadBaselinePR1Format checks the loader still reads the
// hand-rolled pre-schema snapshot committed as BENCH_pr1.json.
func TestLoadBaselinePR1Format(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	pr1 := `{
	  "pr": 1,
	  "command": "go test -bench=...",
	  "benchmarks": {
	    "BenchmarkLogicBISTSerial":       {"ns_per_op": 43229462, "coverage_percent": 90.44, "allocs_per_op": 417},
	    "BenchmarkLogicBISTWordParallel": {"ns_per_op": 844086, "coverage_percent": 90.44, "allocs_per_op": 425}
	  },
	  "speedups": {"logicbist_word_parallel_vs_serial": 51.2}
	}`
	if err := os.WriteFile(path, []byte(pr1), 0o644); err != nil {
		t.Fatal(err)
	}
	base, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := base["BenchmarkLogicBISTSerial"].NsPerOp; got != 43229462 {
		t.Errorf("serial ns_per_op = %v, want 43229462", got)
	}
	if got := base["BenchmarkLogicBISTWordParallel"].AllocsPerOp; got != 425 {
		t.Errorf("parallel allocs_per_op = %v, want 425", got)
	}
}

func TestLoadBaselineRejectsEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.json")
	if err := os.WriteFile(path, []byte(`{"pr": 9}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBaseline(path); err == nil {
		t.Error("baseline without benchmarks loaded without error")
	}
}

func TestReportRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	rep := &Report{
		Schema:    Schema,
		Benchtime: "1x",
		Benchmarks: map[string]Entry{
			"BenchmarkGradeParallel": {NsPerOp: 123456, AllocsPerOp: 7, Iterations: 5,
				Extra: map[string]float64{"coverage%": 76.14}},
		},
	}
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	e := back["BenchmarkGradeParallel"]
	if e.NsPerOp != 123456 || e.AllocsPerOp != 7 || e.Extra["coverage%"] != 76.14 {
		t.Errorf("round-tripped entry = %+v", e)
	}
}
