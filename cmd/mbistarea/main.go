// Command mbistarea regenerates the paper's area evaluation: Tables
// 1-3 and the four concluding observations.
//
// Usage:
//
//	mbistarea            # all tables and observations
//	mbistarea -table 2   # one table
//	mbistarea -obs       # observations only
package main

import (
	"flag"
	"fmt"
	"log"

	mbist "repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mbistarea: ")
	table := flag.Int("table", 0, "print only this table (1-3)")
	obs := flag.Bool("obs", false, "print only the observations")
	flag.Parse()

	printTable := func(n int, f func() (*mbist.Table, error)) {
		t, err := f()
		if err != nil {
			log.Fatalf("table %d: %v", n, err)
		}
		fmt.Println(t)
	}

	if *obs {
		printObservations()
		return
	}
	switch *table {
	case 0:
		printTable(1, mbist.Table1)
		printTable(2, mbist.Table2)
		printTable(3, mbist.Table3)
		printObservations()
	case 1:
		printTable(1, mbist.Table1)
	case 2:
		printTable(2, mbist.Table2)
	case 3:
		printTable(3, mbist.Table3)
	default:
		log.Fatalf("no table %d (want 1-3)", *table)
	}
}

func printObservations() {
	o, err := mbist.MeasureObservations()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Observations (paper §3):")
	fmt.Print(o)
	if err := o.Check(); err != nil {
		log.Fatalf("observation check FAILED: %v", err)
	}
	fmt.Println("all four observations hold")
}
