// Command mbistsim runs a march test on a (possibly faulty) simulated
// memory through a selected BIST architecture, and prints the verdict,
// the fail log, the fail bitmap and a diagnosis.
//
// Usage:
//
//	mbistsim -alg marchc -size 64
//	mbistsim -alg marchc+ -arch microcode -fault sa1@13
//	mbistsim -alg marchc -width 8 -ports 2 -fault cfid:3:9 -bitmap
//
// Fault syntax (cells are bit indices = addr*width + bit):
//
//	sa0@C sa1@C      stuck-at on cell C
//	tfu@C tfd@C      transition fault (cannot rise / cannot fall)
//	sof@C            stuck-open cell
//	drf0@C drf1@C    data retention (leaks to 0/1)
//	rdf0@C rdf1@C    read disturb (disconnected pull-down/up)
//	wdf0@C wdf1@C    write disturb (non-transition write flips)
//	irf0@C irf1@C    incorrect read
//	drdf0@C drdf1@C  deceptive read destructive
//	cfin:A:V         inversion coupling, aggressor A victim V
//	cfid:A:V         idempotent coupling <↑;1>
//	cfst:A:V         state coupling <1;1>
//	afnone@ADDR      address selects no cell
//	afmap:A:B        address A selects B's cells
//	afmulti:A:B      address A also selects B's cells
//
// The observability flags -cpuprofile, -memprofile, -trace and
// -metrics profile a run; -metrics dumps the obs counter snapshot
// (march operation counts, settle events, ...) to stderr at exit.
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	mbist "repro"
	"repro/internal/diag"
	"repro/internal/faults"
	"repro/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mbistsim: ")
	algName := flag.String("alg", "marchc", "library algorithm name")
	archName := flag.String("arch", "microcode", "architecture: reference, microcode, fsm, hardwired")
	size := flag.Int("size", 64, "memory addresses")
	width := flag.Int("width", 1, "word width in bits")
	ports := flag.Int("ports", 1, "memory ports")
	maxFails := flag.Int("maxfails", 0, "stop after this many fails (0 = log all)")
	bitmap := flag.Bool("bitmap", false, "print the fail bitmap")
	locate := flag.Bool("locate", false, "probe for coupling aggressors when a single victim is implicated")
	var faultSpecs multiFlag
	flag.Var(&faultSpecs, "fault", "inject a fault (repeatable)")
	var prof obs.Flags
	prof.Register(flag.CommandLine)
	flag.Parse()

	stop, err := prof.Start()
	if err != nil {
		log.Fatal(err)
	}
	runErr := run(*algName, *archName, *size, *width, *ports, *maxFails, *bitmap, *locate, faultSpecs)
	if err := stop(); err != nil {
		log.Print(err)
	}
	if runErr != nil {
		log.Fatal(runErr)
	}
}

func run(algName, archName string, size, width, ports, maxFails int, bitmap, locate bool, faultSpecs multiFlag) error {
	alg, ok := mbist.AlgorithmByName(algName)
	if !ok {
		return fmt.Errorf("unknown algorithm %q", algName)
	}
	arch, err := parseArch(archName)
	if err != nil {
		return err
	}

	var fs []mbist.Fault
	for _, spec := range faultSpecs {
		f, err := parseFault(spec)
		if err != nil {
			return err
		}
		fs = append(fs, f)
	}
	mem, err := mbist.NewFaultyMemory(size, width, ports, fs...)
	if err != nil {
		return err
	}

	res, err := mbist.Run(arch, alg, mem, mbist.RunOptions{MaxFails: maxFails})
	if err != nil {
		return err
	}

	fmt.Printf("algorithm: %s = %s\n", alg.Name, alg)
	fmt.Printf("memory:    %d x %d bits, %d port(s)\n", size, width, ports)
	fmt.Printf("arch:      %v\n", arch)
	for _, f := range fs {
		fmt.Printf("injected:  %v\n", f)
	}
	fmt.Printf("operations: %d", res.Operations)
	if res.Cycles > 0 {
		fmt.Printf(", cycles: %d", res.Cycles)
	}
	fmt.Println()
	if res.Pass {
		fmt.Println("verdict:   PASS")
		return nil
	}
	fmt.Printf("verdict:   FAIL (%d miscompares, signature %04x)\n", len(res.Fails), res.Signature)
	for i, f := range res.Fails {
		if i >= 10 {
			fmt.Printf("  ... %d more\n", len(res.Fails)-10)
			break
		}
		fmt.Printf("  %v\n", f)
	}

	d := diag.Classify(res.Fails, alg, size, width)
	fmt.Printf("diagnosis: %v", d.Class)
	if d.PortSpecific {
		fmt.Printf(", port-specific (port %d)", d.Port)
	}
	if d.RetentionOnly {
		fmt.Printf(", retention signature")
	}
	fmt.Printf(", cells %v\n", d.Cells)

	if bitmap {
		fmt.Println("fail bitmap (addr rows, bit columns):")
		fmt.Print(diag.BuildBitmap(res.Fails, size, width))
	}
	if locate && d.Class == diag.ClassSingleCell {
		probe, err := mbist.NewFaultyMemory(size, width, ports, fs...)
		if err != nil {
			return err
		}
		suspects := diag.LocateAggressor(probe, 0, d.Cells[0])
		cells := diag.AggressorCells(suspects)
		switch {
		case len(cells) == 0:
			fmt.Println("aggressor:  none (isolated cell defect)")
		case len(cells) <= 2:
			fmt.Printf("aggressor:  %v\n", suspects)
		default:
			fmt.Printf("aggressor:  %d cells implicated — not a coupling defect\n", len(cells))
		}
	}
	return nil
}

type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }
func (m *multiFlag) Set(s string) error {
	*m = append(*m, s)
	return nil
}

func parseArch(s string) (mbist.Architecture, error) {
	switch s {
	case "reference":
		return mbist.Reference, nil
	case "microcode":
		return mbist.Microcode, nil
	case "fsm":
		return mbist.ProgFSM, nil
	case "hardwired":
		return mbist.Hardwired, nil
	}
	return 0, fmt.Errorf("unknown architecture %q", s)
}

func parseFault(spec string) (mbist.Fault, error) {
	bad := func() (mbist.Fault, error) {
		return mbist.Fault{}, fmt.Errorf("bad fault spec %q", spec)
	}
	if name, at, ok := strings.Cut(spec, "@"); ok {
		cell, err := strconv.Atoi(at)
		if err != nil {
			return bad()
		}
		f := mbist.Fault{Cell: cell, Addr: cell, Port: faults.AnyPort}
		switch name {
		case "sa0":
			f.Kind = faults.SA
		case "sa1":
			f.Kind, f.Value = faults.SA, true
		case "tfu":
			f.Kind, f.Value = faults.TF, true
		case "tfd":
			f.Kind = faults.TF
		case "sof":
			f.Kind = faults.SOF
		case "drf0":
			f.Kind = faults.DRF
		case "drf1":
			f.Kind, f.Value = faults.DRF, true
		case "rdf0":
			f.Kind = faults.RDF
		case "rdf1":
			f.Kind, f.Value = faults.RDF, true
		case "wdf0":
			f.Kind = faults.WDF
		case "wdf1":
			f.Kind, f.Value = faults.WDF, true
		case "irf0":
			f.Kind = faults.IRF
		case "irf1":
			f.Kind, f.Value = faults.IRF, true
		case "drdf0":
			f.Kind = faults.DRDF
		case "drdf1":
			f.Kind, f.Value = faults.DRDF, true
		case "afnone":
			f.Kind = faults.AFNone
		default:
			return bad()
		}
		return f, nil
	}
	parts := strings.Split(spec, ":")
	if len(parts) != 3 {
		return bad()
	}
	a, err1 := strconv.Atoi(parts[1])
	v, err2 := strconv.Atoi(parts[2])
	if err1 != nil || err2 != nil {
		return bad()
	}
	f := mbist.Fault{Aggressor: a, Cell: v, Addr: a, AggAddr: v, Port: faults.AnyPort}
	switch parts[0] {
	case "cfin":
		f.Kind, f.AggVal = faults.CFin, true
	case "cfid":
		f.Kind, f.AggVal, f.Value = faults.CFid, true, true
	case "cfst":
		f.Kind, f.AggVal, f.Value = faults.CFst, true, true
	case "afmap":
		f.Kind, f.Addr, f.AggAddr = faults.AFMap, a, v
	case "afmulti":
		f.Kind, f.Addr, f.AggAddr = faults.AFMulti, a, v
	default:
		return bad()
	}
	return f, nil
}
